// Tests for the TCP front-end: line framing and id salvage, byte-identity
// with the batch front-end, hostile wire input (oversized lines,
// half-closed sockets, pipelining), connection limits, overload
// rejection, graceful drain, and the loadgen driver.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/line_buffer.h"
#include "src/net/loadgen.h"
#include "src/net/socket.h"
#include "src/net/tcp_server.h"
#include "src/obs/obs.h"
#include "src/service/service.h"

namespace tp::net {
namespace {

using service::Engine;
using service::EngineConfig;

service::QueryKey plan_key(i32 ka, i32 kb) {
  Radices radices;
  radices.push_back(ka);
  radices.push_back(kb);
  return service::make_query_key(radices, 1, RouterKind::Odr,
                                 service::QueryOp::Plan);
}

// ------------------------------------------------------------- test client

/// A blocking JSONL test client against a TcpServer.
struct Client {
  Socket sock;
  LineBuffer lines{1 << 20};

  explicit Client(u16 port) : sock(connect_to("127.0.0.1", port)) {}

  void send(std::string_view text) {
    ASSERT_TRUE(sock.write_all(text.data(), text.size()));
  }

  /// One response line, or nullopt at EOF.
  std::optional<std::string> read_line() {
    for (;;) {
      if (auto line = lines.next_line()) return line->text;
      char buf[4096];
      const i64 got = sock.read_some(buf, sizeof buf);
      if (got <= 0) {
        if (auto residual = lines.take_residual()) return residual->text;
        return std::nullopt;
      }
      lines.feed(buf, static_cast<std::size_t>(got));
    }
  }

  /// Every remaining byte until EOF, verbatim.
  std::string slurp() {
    std::string out;
    char buf[4096];
    i64 got = 0;
    while ((got = sock.read_some(buf, sizeof buf)) > 0)
      out.append(buf, static_cast<std::size_t>(got));
    return out;
  }
};

void wait_for(const std::function<bool()>& pred) {
  for (int i = 0; i < 5000 && !pred(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pred());
}

/// Installs the server as the statusz listener provider for one test and
/// guarantees the global is cleared again (it outlives the server).
struct ListenerProviderGuard {
  explicit ListenerProviderGuard(TcpServer& server) {
    service::set_listener_status_provider(
        [&server] { return server.listener_status(); });
  }
  ~ListenerProviderGuard() { service::set_listener_status_provider({}); }
};

// ------------------------------------------------------------- LineBuffer

TEST(LineBuffer, ReassemblesLinesAcrossChunks) {
  LineBuffer buf(1024);
  buf.feed("ab");
  EXPECT_FALSE(buf.next_line().has_value());
  buf.feed("c\nde\nf");
  auto one = buf.next_line();
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->text, "abc");
  EXPECT_FALSE(one->oversized);
  auto two = buf.next_line();
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->text, "de");
  EXPECT_FALSE(buf.next_line().has_value());
  auto residual = buf.take_residual();
  ASSERT_TRUE(residual.has_value());
  EXPECT_EQ(residual->text, "f");
  EXPECT_FALSE(buf.take_residual().has_value());
}

TEST(LineBuffer, BlankLinesComeThrough) {
  LineBuffer buf(1024);
  buf.feed("\n\nx\n");
  EXPECT_EQ(buf.next_line()->text, "");
  EXPECT_EQ(buf.next_line()->text, "");
  EXPECT_EQ(buf.next_line()->text, "x");
}

TEST(LineBuffer, OversizedLineTruncatedOnceThenDiscarded) {
  LineBuffer buf(8);
  // 12 bytes, no newline yet: reported as soon as the limit is crossed.
  buf.feed("0123456789ab");
  auto big = buf.next_line();
  ASSERT_TRUE(big.has_value());
  EXPECT_TRUE(big->oversized);
  EXPECT_EQ(big->text, "01234567");
  // The rest of the line (through its newline) is dropped; the next real
  // line frames normally.
  buf.feed("cdef\nok\n");
  auto next = buf.next_line();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->text, "ok");
  EXPECT_FALSE(next->oversized);
}

TEST(LineBuffer, OversizedTailIsNotResidual) {
  LineBuffer buf(8);
  buf.feed("0123456789ab");
  ASSERT_TRUE(buf.next_line()->oversized);
  buf.feed("cdef");  // still the discarded tail, EOF here
  EXPECT_FALSE(buf.next_line().has_value());
  EXPECT_FALSE(buf.take_residual().has_value());
}

TEST(LineBuffer, ExactLimitLineIsNotOversized) {
  LineBuffer buf(4);
  buf.feed("abcd\n");
  auto line = buf.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "abcd");
  EXPECT_FALSE(line->oversized);
}

// ------------------------------------------------------------- id salvage

TEST(SalvageIdPrefix, RecoversStringAndNumberIds) {
  EXPECT_EQ(salvage_id_prefix(R"({"id":"q7","op":"plan","pad":)", 3)
                .as_string(),
            "q7");
  EXPECT_EQ(salvage_id_prefix(R"({"id": 42,"op":"plan")", 3).as_int(), 42);
}

TEST(SalvageIdPrefix, FallsBackToLineNumberWhenAmbiguous) {
  // No id at all.
  EXPECT_EQ(salvage_id_prefix(R"({"op":"plan","pad":"xxx)", 9).as_int(), 9);
  // String id cut before its closing quote.
  EXPECT_EQ(salvage_id_prefix(R"({"id":"trunc)", 9).as_int(), 9);
  // Escapes need a real parser; bail.
  EXPECT_EQ(salvage_id_prefix(R"({"id":"a\"b","op":)", 9).as_int(), 9);
  // A number running into the cut may itself be truncated mid-digits.
  EXPECT_EQ(salvage_id_prefix(R"({"id":123)", 9).as_int(), 9);
}

// ---------------------------------------------------------- parse_host_port

TEST(ParseHostPort, AcceptsAddrPortAndDefaultsEmptyHost) {
  const HostPort hp = parse_host_port("127.0.0.1:8080");
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 8080);
  EXPECT_EQ(parse_host_port(":0").host, "0.0.0.0");
  EXPECT_EQ(parse_host_port(":0").port, 0);
}

TEST(ParseHostPort, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_host_port("no-port"), Error);
  EXPECT_THROW(parse_host_port("h:99999"), Error);
  EXPECT_THROW(parse_host_port("h:12x"), Error);
}

// ------------------------------------------------------------- TCP server

TEST(TcpServer, ByteIdentityWithBatch) {
  // The same request stream — plans, loads, bounds, a parse error, a
  // blank line, an id-less line — must produce byte-identical output over
  // TCP and through run_batch (responses are a pure function of the
  // request; ordering is input order on both paths).
  const std::string stream =
      "{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n"
      "{\"id\":\"two\",\"op\":\"load\",\"d\":2,\"k\":6,\"router\":\"udr\"}\n"
      "\n"
      "{\"op\":\"bounds\",\"d\":3,\"k\":4}\n"
      "{\"id\":5,\"op\":\"nope\"}\n"
      "{\"id\":6,\"op\":\"plan\",\"d\":2,\"k\":4}\n";

  std::ostringstream batch_out;
  {
    Engine engine(EngineConfig{});
    std::istringstream in(stream);
    service::run_batch(engine, in, batch_out);
  }

  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  Client client(server.port());
  client.send(stream);
  client.sock.shutdown_write();
  EXPECT_EQ(client.slurp(), batch_out.str());
}

TEST(TcpServer, HalfClosedSocketAnswersResidualLine) {
  // getline parity: the final unterminated line still gets its answer.
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  Client client(server.port());
  client.send("{\"id\":\"tail\",\"op\":\"plan\",\"d\":2,\"k\":4}");
  client.sock.shutdown_write();
  auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  const obs::JsonValue doc = obs::parse_json(*line);
  EXPECT_EQ(doc.find("id")->as_string(), "tail");
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_FALSE(client.read_line().has_value());  // then clean EOF
}

TEST(TcpServer, OversizedLineSalvagesIdAndConnectionSurvives) {
  Engine engine(EngineConfig{});
  TcpServerConfig config;
  config.max_line_bytes = 128;
  TcpServer server(engine, config);
  server.start();
  Client client(server.port());

  std::string big = "{\"id\":\"big\",\"op\":\"plan\",\"pad\":\"";
  big.append(300, 'x');
  big += "\"}\n";
  client.send(big);
  auto reply = client.read_line();
  ASSERT_TRUE(reply.has_value());
  const obs::JsonValue doc = obs::parse_json(*reply);
  EXPECT_EQ(doc.find("id")->as_string(), "big");
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_NE(doc.find("error")->as_string().find("oversized"),
            std::string::npos);
  EXPECT_NE(doc.find("error")->as_string().find("max_line_bytes=128"),
            std::string::npos);

  // The connection survives and the next request is answered normally.
  client.send("{\"id\":\"after\",\"op\":\"plan\",\"d\":2,\"k\":4}\n");
  auto next = client.read_line();
  ASSERT_TRUE(next.has_value());
  const obs::JsonValue ok = obs::parse_json(*next);
  EXPECT_EQ(ok.find("id")->as_string(), "after");
  EXPECT_TRUE(ok.find("ok")->as_bool());
  EXPECT_EQ(server.stats().oversized_lines, 1);
}

TEST(TcpServer, PipelinedRequestsAnsweredInOrder) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  Client client(server.port());

  // One write carrying many interleaved requests (distinct keys, repeats,
  // an admin op in the middle): responses must come back in send order.
  std::string burst;
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) {
    std::string id = "p";
    id += std::to_string(i);
    ids.push_back(id);
    const int k = 4 + 2 * (i % 3);
    burst += "{\"id\":\"" + id + "\",\"op\":\"plan\",\"d\":2,\"k\":" +
             std::to_string(k) + "}\n";
  }
  ids.push_back("mid");
  burst += "{\"id\":\"mid\",\"op\":\"statusz\"}\n";
  ids.push_back("p-last");
  burst += "{\"id\":\"p-last\",\"op\":\"plan\",\"d\":2,\"k\":4}\n";
  client.send(burst);

  for (const std::string& id : ids) {
    auto line = client.read_line();
    ASSERT_TRUE(line.has_value());
    const obs::JsonValue doc = obs::parse_json(*line);
    EXPECT_EQ(doc.find("id")->as_string(), id);
    EXPECT_TRUE(doc.find("ok")->as_bool());
  }
}

TEST(TcpServer, ConnectionLimitRejectsWithStructuredError) {
  Engine engine(EngineConfig{});
  TcpServerConfig config;
  config.max_conns = 1;
  TcpServer server(engine, config);
  server.start();

  Client first(server.port());
  first.send("{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n");
  ASSERT_TRUE(first.read_line().has_value());  // conn 1 is live

  Client second(server.port());
  auto reply = second.read_line();
  ASSERT_TRUE(reply.has_value());
  const obs::JsonValue doc = obs::parse_json(*reply);
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_NE(doc.find("error")->as_string().find("connection limit"),
            std::string::npos);
  EXPECT_FALSE(second.read_line().has_value());  // then EOF
  wait_for([&server] { return server.stats().rejected == 1; });
}

TEST(Engine, TrySubmitRejectsWithOverloadWhenQueueFull) {
  EngineConfig config;
  config.threads = 1;
  config.queue_capacity = 1;
  Engine engine(config);

  // Distinct keys submitted much faster than one worker can plan them:
  // the 1-deep queue must overflow, and try_submit answers the overflow
  // with a structured overload response instead of blocking.
  i64 overloads = 0;
  std::vector<Engine::Ticket> tickets;
  for (i32 i = 0; i < 40; ++i) {
    service::Request req;
    req.key = plan_key(4 + 2 * (i % 20), 4 + 2 * (i / 20));
    tickets.push_back(engine.try_submit(req));
  }
  for (auto& ticket : tickets) {
    const service::Response response = ticket.wait();
    if (response.overload) {
      ++overloads;
      EXPECT_FALSE(response.ok);
      EXPECT_FALSE(response.timeout);
      EXPECT_NE(response.error.find("overloaded"), std::string::npos);
    }
  }
  EXPECT_GT(overloads, 0);

  // The engine still answers: a fresh blocking submit works fine.
  service::Request again;
  again.key = plan_key(4, 4);
  EXPECT_TRUE(engine.run(again).ok);
}

TEST(TcpServer, GracefulDrainAnswersEverythingAccepted) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  Client client(server.port());

  std::string burst;
  for (int i = 0; i < 8; ++i)
    burst += "{\"id\":" + std::to_string(i) +
             ",\"op\":\"plan\",\"d\":2,\"k\":" + std::to_string(4 + 2 * i) +
             "}\n";
  client.send(burst);
  // Make sure the server has read all 8 before the drain starts.
  wait_for([&server] { return server.stats().requests == 8; });

  server.request_drain();
  server.wait_until_drained();

  // Every accepted request got a complete response line, then EOF — no
  // torn bytes.
  const std::string rest = client.slurp();
  ASSERT_FALSE(rest.empty());
  EXPECT_EQ(rest.back(), '\n');
  i64 responses = 0;
  std::istringstream in(rest);
  std::string line;
  while (std::getline(in, line)) {
    const obs::JsonValue doc = obs::parse_json(line);
    EXPECT_TRUE(doc.find("ok")->as_bool());
    ++responses;
  }
  EXPECT_EQ(responses, 8);
  EXPECT_EQ(server.stats().open_connections, 0);
}

TEST(TcpServer, QuitzDrainsWholeServer) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  Client client(server.port());
  client.send(
      "{\"id\":\"q1\",\"op\":\"plan\",\"d\":2,\"k\":4}\n"
      "{\"id\":\"bye\",\"op\":\"quitz\"}\n"
      "{\"id\":\"never\",\"op\":\"plan\",\"d\":2,\"k\":6}\n");

  auto first = client.read_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(obs::parse_json(*first).find("id")->as_string(), "q1");
  auto second = client.read_line();
  ASSERT_TRUE(second.has_value());
  const obs::JsonValue quitz = obs::parse_json(*second);
  EXPECT_EQ(quitz.find("id")->as_string(), "bye");
  EXPECT_TRUE(quitz.find("draining")->as_bool());
  // Intake stopped at quitz: the third request is never answered.
  EXPECT_FALSE(client.read_line().has_value());

  server.wait_until_drained();
  EXPECT_TRUE(server.draining());
}

TEST(TcpServer, StatuszReportsListenerState) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();
  const ListenerProviderGuard guard(server);

  Client client(server.port());
  client.send("{\"id\":\"s\",\"op\":\"statusz\"}\n");
  auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  const obs::JsonValue doc = obs::parse_json(*line);
  const obs::JsonValue* listener = doc.find("listener");
  ASSERT_NE(listener, nullptr);
  EXPECT_TRUE(listener->find("configured")->as_bool());
  EXPECT_EQ(listener->find("address")->as_string(), server.address());
  EXPECT_EQ(listener->find("state")->as_string(), "accepting");
  EXPECT_EQ(listener->find("open_connections")->as_int(), 1);
  EXPECT_EQ(listener->find("accepted")->as_int(), 1);
}

TEST(TcpServer, PublishesCountersIntoRegistry) {
  obs::registry().reset();
  obs::registry().set_enabled(true);
  {
    Engine engine(EngineConfig{});
    TcpServer server(engine, TcpServerConfig{});
    server.start();
    {
      Client client(server.port());
      client.send("{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n");
      ASSERT_TRUE(client.read_line().has_value());
      client.sock.shutdown_write();
      EXPECT_FALSE(client.read_line().has_value());
    }
    wait_for([&server] { return server.stats().open_connections == 0; });
    server.publish_stats();
  }
  obs::registry().set_enabled(false);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  ASSERT_NE(snap.counter("net.accepted"), nullptr);
  EXPECT_EQ(*snap.counter("net.accepted"), 1);
  EXPECT_EQ(*snap.counter("net.requests"), 1);
  EXPECT_EQ(*snap.counter("net.responses"), 1);
  EXPECT_GT(*snap.counter("net.bytes_in"), 0);
  EXPECT_GT(*snap.counter("net.bytes_out"), 0);
  const obs::HistogramData* lifetime =
      snap.histogram("net.conn_lifetime_us");
  ASSERT_NE(lifetime, nullptr);
  EXPECT_EQ(lifetime->count, 1);
  const i64* open = snap.gauge("net.open_connections");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(*open, 0);
  obs::registry().reset();
}

// --------------------------------------------------------------- loadgen

TEST(KeySampler, UniformCoversUniverseZipfSkews) {
  KeySampler uniform(8, /*zipf=*/false, 1.1, 42);
  std::vector<i64> ucounts(8, 0);
  for (int i = 0; i < 4000; ++i) {
    const i64 key = uniform.next();
    ASSERT_GE(key, 0);
    ASSERT_LT(key, 8);
    ++ucounts[static_cast<std::size_t>(key)];
  }
  for (const i64 c : ucounts) EXPECT_GT(c, 0);

  KeySampler zipf(8, /*zipf=*/true, 1.2, 42);
  std::vector<i64> zcounts(8, 0);
  for (int i = 0; i < 4000; ++i)
    ++zcounts[static_cast<std::size_t>(zipf.next())];
  // Rank 1 dominates the tail under zipf(1.2).
  EXPECT_GT(zcounts[0], 3 * zcounts[7]);
  EXPECT_GT(zcounts[0], zcounts[1]);
}

TEST(Loadgen, ClosedLoopSmoke) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();

  LoadgenConfig config;
  config.port = server.port();
  config.clients = 4;
  config.duration_ms = 400;
  config.warmup_ms = 100;
  config.universe = 4;
  const LoadgenReport report = run_loadgen(config);

  EXPECT_GT(report.sent, 0);
  EXPECT_EQ(report.answered, report.sent);
  EXPECT_EQ(report.ok, report.answered);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.timeouts, 0);
  EXPECT_EQ(report.torn, 0);
  EXPECT_GT(report.samples, 0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_GE(report.p999_us, report.p99_us);

  std::ostringstream human;
  print_report(report, config, human);
  EXPECT_NE(human.str().find("mode=closed"), std::string::npos);
  EXPECT_NE(human.str().find("errors 0"), std::string::npos);

  const obs::JsonValue json = report_to_json(report, config);
  EXPECT_EQ(json.find("schema")->as_string(), "torusplace-loadgen/1");
  EXPECT_EQ(json.find("torn")->as_int(), 0);
}

TEST(Loadgen, OpenLoopSmoke) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();

  LoadgenConfig config;
  config.port = server.port();
  config.open_loop = true;
  config.clients = 2;
  config.rate = 500.0;
  config.duration_ms = 400;
  config.warmup_ms = 100;
  config.universe = 4;
  config.zipf = true;
  const LoadgenReport report = run_loadgen(config);

  EXPECT_GT(report.sent, 0);
  EXPECT_EQ(report.answered, report.sent);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.torn, 0);
  EXPECT_GT(report.samples, 0);
}

TEST(Loadgen, GracefulDrainUnderLoadNeverTearsResponses) {
  Engine engine(EngineConfig{});
  TcpServer server(engine, TcpServerConfig{});
  server.start();

  LoadgenConfig config;
  config.port = server.port();
  config.clients = 4;
  config.duration_ms = 2000;
  config.warmup_ms = 0;
  config.universe = 8;

  LoadgenReport report;
  std::thread driver([&report, &config] { report = run_loadgen(config); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.request_drain();
  server.wait_until_drained();
  driver.join();

  // Mid-run drain: some requests go unanswered (closed_early) and some
  // may be rejected with the structured draining error — but a torn
  // response line is a contract violation, always.
  EXPECT_GT(report.answered, 0);
  EXPECT_EQ(report.torn, 0);
}

}  // namespace
}  // namespace tp::net
