// Tests for the observability subsystem: metrics registry semantics,
// histogram bucketing and percentiles, stopwatch monotonicity, JSON
// parse/dump round-trips, and the stats / Chrome-trace exporters.
//
// Tests use local MetricsRegistry / Tracer instances, not the process-wide
// singletons, so they cannot interfere with instrumentation elsewhere.

#include <gtest/gtest.h>

#include <sstream>

#include "src/obs/obs.h"
#include "src/util/error.h"

namespace tp {
namespace {

// --- registry -------------------------------------------------------------

TEST(Registry, CounterAccumulates) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::CounterHandle h = reg.counter("hops");
  reg.add(h);
  reg.add(h, 41);
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("hops"), nullptr);
  EXPECT_EQ(*snap.counter("hops"), 42);
}

TEST(Registry, RegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::CounterHandle a = reg.counter("same");
  const obs::CounterHandle b = reg.counter("same");
  EXPECT_EQ(a.idx, b.idx);
  reg.add(a, 1);
  reg.add(b, 2);
  EXPECT_EQ(*reg.snapshot().counter("same"), 3);
}

TEST(Registry, GaugeSetAndSetMax) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::GaugeHandle h = reg.gauge("depth");
  reg.set(h, 7);
  EXPECT_EQ(*reg.snapshot().gauge("depth"), 7);
  reg.set_max(h, 3);  // lower: no change
  EXPECT_EQ(*reg.snapshot().gauge("depth"), 7);
  reg.set_max(h, 11);  // higher: raises
  EXPECT_EQ(*reg.snapshot().gauge("depth"), 11);
}

TEST(Registry, DisabledRegistryRecordsNothing) {
  obs::MetricsRegistry reg;  // disabled by default
  EXPECT_FALSE(reg.enabled());
  const obs::CounterHandle c = reg.counter("c");
  const obs::GaugeHandle g = reg.gauge("g");
  const obs::HistogramHandle h = reg.histogram("h");
  reg.add(c, 100);
  reg.set(g, 100);
  reg.set_max(g, 100);
  reg.record(h, 100);
  reg.record_duration_us("scope", 100);
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(*snap.counter("c"), 0);
  EXPECT_EQ(*snap.gauge("g"), 0);
  EXPECT_EQ(snap.histogram("h")->count, 0);
  // record_duration_us on a disabled registry must not even register.
  EXPECT_EQ(snap.histogram("scope_us"), nullptr);
}

TEST(Registry, DefaultHandleIsInertEvenWhenEnabled) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  obs::CounterHandle unresolved;  // idx = -1
  reg.add(unresolved, 5);         // must be a no-op, not an OOB write
  EXPECT_TRUE(reg.snapshot().counters.empty());
}

TEST(Registry, ResetZeroesSlotsButKeepsRegistrations) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::CounterHandle h = reg.counter("n");
  reg.add(h, 9);
  reg.reset();
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("n"), nullptr);
  EXPECT_EQ(*snap.counter("n"), 0);
  reg.add(h, 2);  // old handle still valid
  EXPECT_EQ(*reg.snapshot().counter("n"), 2);
}

TEST(Registry, SnapshotLookupReturnsNullForUnknownNames) {
  obs::MetricsRegistry reg;
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("nope"), nullptr);
  EXPECT_EQ(snap.gauge("nope"), nullptr);
  EXPECT_EQ(snap.histogram("nope"), nullptr);
}

TEST(Registry, RecordDurationUsCreatesSuffixedHistogram) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.record_duration_us("plan", 12);
  reg.record_duration_us("plan", 20);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::HistogramData* h = snap.histogram("plan_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_EQ(h->sum, 32);
}

// --- histogram ------------------------------------------------------------

TEST(Histogram, BucketsAndSummaryStats) {
  obs::HistogramData h({10, 20, 30});
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  h.record(5);
  h.record(10);  // inclusive upper edge: still the first bucket
  h.record(25);
  h.record(99);  // overflow
  EXPECT_EQ(h.counts[0], 2);
  EXPECT_EQ(h.counts[1], 0);
  EXPECT_EQ(h.counts[2], 1);
  EXPECT_EQ(h.counts[3], 1);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum, 139);
  EXPECT_EQ(h.min, 5);
  EXPECT_EQ(h.max, 99);
  EXPECT_DOUBLE_EQ(h.mean(), 139.0 / 4.0);
}

TEST(Histogram, PercentilesOfConstantDistributionAreExact) {
  obs::HistogramData h;
  for (int i = 0; i < 100; ++i) h.record(7);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.0);
}

TEST(Histogram, PercentilesAreMonotoneAndClampedToRange) {
  obs::HistogramData h;
  for (i64 v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  EXPECT_LE(p50, p95);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p95, 1000.0);
  // Uniform 1..1000: the bucketed estimate should land near the truth.
  EXPECT_NEAR(p50, 500.0, 150.0);
  EXPECT_NEAR(p95, 950.0, 150.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  const obs::HistogramData h;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// --- timer ----------------------------------------------------------------

TEST(Timer, StopwatchIsMonotone) {
  const obs::Stopwatch w;
  const i64 a = w.elapsed_ns();
  const i64 b = w.elapsed_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  EXPECT_GE(obs::Stopwatch::now_ns(), 0);
}

TEST(Timer, ScopedTimerAccumulatesIntoCounter) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  const obs::CounterHandle h = reg.counter("work_ns");
  {
    obs::ScopedTimer timer(reg, h);
  }
  {
    obs::ScopedTimer timer(reg, h);
  }
  EXPECT_GE(*reg.snapshot().counter("work_ns"), 0);
}

// --- tracer ---------------------------------------------------------------

TEST(Tracer, RecordsBalancedSpans) {
  obs::Tracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.begin("ignored");  // disabled: dropped
  tr.end("ignored");
  EXPECT_TRUE(tr.events().empty());

  tr.set_enabled(true);
  tr.begin("outer", "phase");
  tr.begin("inner", "phase");
  tr.instant("marker");
  tr.end("inner");
  tr.end("outer");
  const std::vector<obs::TraceEvent> ev = tr.events();
  ASSERT_EQ(ev.size(), 5u);
  EXPECT_EQ(ev[0].name, "outer");
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(ev[2].phase, 'i');
  EXPECT_EQ(ev[4].name, "outer");
  EXPECT_EQ(ev[4].phase, 'E');
  for (std::size_t i = 1; i < ev.size(); ++i)
    EXPECT_GE(ev[i].ts_ns, ev[i - 1].ts_ns);
  tr.clear();
  EXPECT_TRUE(tr.events().empty());
}

// --- json -----------------------------------------------------------------

TEST(Json, ParseScalarsAndStructure) {
  const obs::JsonValue v = obs::parse_json(
      R"({"a": 1, "b": -2.5, "c": [true, false, null], "d": "x\ny"})");
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->as_number(), -2.5);
  const obs::JsonValue& arr = *v.find("c");
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_TRUE(arr.items()[0].as_bool());
  EXPECT_FALSE(arr.items()[1].as_bool());
  EXPECT_TRUE(arr.items()[2].is_null());
  EXPECT_EQ(v.find("d")->as_string(), "x\ny");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DumpParseRoundTrip) {
  obs::JsonValue obj = obs::JsonValue::object();
  obj.set("n", obs::JsonValue(i64{1234567}));
  obj.set("s", obs::JsonValue("quote\" and \\slash"));
  obs::JsonValue arr = obs::JsonValue::array();
  arr.push_back(obs::JsonValue(3.5));
  obj.set("a", std::move(arr));
  const obs::JsonValue back = obs::parse_json(obj.dump());
  EXPECT_EQ(back.find("n")->as_int(), 1234567);
  EXPECT_EQ(back.find("s")->as_string(), "quote\" and \\slash");
  EXPECT_DOUBLE_EQ(back.find("a")->items()[0].as_number(), 3.5);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(obs::parse_json("{"), Error);
  EXPECT_THROW(obs::parse_json("[1, 2,]"), Error);
  EXPECT_THROW(obs::parse_json("{} trailing"), Error);
  EXPECT_THROW(obs::parse_json("\"unterminated"), Error);
  EXPECT_THROW(obs::parse_json(""), Error);
}

TEST(Json, KindMismatchThrows) {
  const obs::JsonValue v = obs::parse_json("42");
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.as_bool(), Error);
  EXPECT_THROW(v.items(), Error);
}

// --- exporters ------------------------------------------------------------

TEST(Export, StatsJsonLineRoundTrips) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add(reg.counter("sim.cycles"), 17);
  reg.set(reg.gauge("sim.max_queue_depth"), 4);
  const obs::HistogramHandle h = reg.histogram("sim.latency");
  reg.record(h, 3);
  reg.record(h, 5);
  const std::string line = obs::stats_json_line(reg.snapshot());
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line (JSONL)

  const obs::JsonValue root = obs::parse_json(line);
  EXPECT_EQ(root.find("counters")->find("sim.cycles")->as_int(), 17);
  EXPECT_EQ(root.find("gauges")->find("sim.max_queue_depth")->as_int(), 4);
  const obs::JsonValue& hist =
      *root.find("histograms")->find("sim.latency");
  EXPECT_EQ(hist.find("count")->as_int(), 2);
  EXPECT_EQ(hist.find("sum")->as_int(), 8);
  EXPECT_EQ(hist.find("min")->as_int(), 3);
  EXPECT_EQ(hist.find("max")->as_int(), 5);
  EXPECT_DOUBLE_EQ(hist.find("mean")->as_number(), 4.0);
  ASSERT_NE(hist.find("p50"), nullptr);
  ASSERT_NE(hist.find("p95"), nullptr);
  EXPECT_EQ(hist.find("bounds")->items().size(),
            obs::default_bucket_bounds().size());
  EXPECT_EQ(hist.find("counts")->items().size(),
            obs::default_bucket_bounds().size() + 1);
}

TEST(Export, ChromeTraceRoundTrips) {
  obs::Tracer tr;
  tr.set_enabled(true);
  tr.begin("plan", "phase");
  tr.end("plan");
  tr.instant("mark");
  std::ostringstream os;
  obs::export_chrome_trace(tr, os);

  const obs::JsonValue root = obs::parse_json(os.str());
  EXPECT_EQ(root.find("displayTimeUnit")->as_string(), "ms");
  const obs::JsonValue& events = *root.find("traceEvents");
  ASSERT_EQ(events.items().size(), 3u);
  const obs::JsonValue& b = events.items()[0];
  EXPECT_EQ(b.find("name")->as_string(), "plan");
  EXPECT_EQ(b.find("ph")->as_string(), "B");
  EXPECT_EQ(b.find("cat")->as_string(), "phase");
  ASSERT_NE(b.find("ts"), nullptr);
  ASSERT_NE(b.find("pid"), nullptr);
  ASSERT_NE(b.find("tid"), nullptr);
  EXPECT_EQ(events.items()[1].find("ph")->as_string(), "E");
  EXPECT_GE(events.items()[1].find("ts")->as_number(),
            b.find("ts")->as_number());
  EXPECT_EQ(events.items()[2].find("ph")->as_string(), "i");
}

TEST(Export, ScopeRecordsDurationAndSpanOnLocalSingletons) {
  // The global singletons are only touched here, under explicit
  // enable/clear bracketing, to validate the TP_OBS_SCOPE plumbing.
  obs::registry().reset();
  obs::registry().set_enabled(true);
  obs::tracer().clear();
  obs::tracer().set_enabled(true);
  {
    TP_OBS_SCOPE("test.scope");
    TP_OBS_COUNT("test.counter", 2);
    TP_OBS_COUNT("test.counter");
  }
  obs::registry().set_enabled(false);
  obs::tracer().set_enabled(false);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::HistogramData* h = snap.histogram("test.scope_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(*snap.counter("test.counter"), 3);
  const std::vector<obs::TraceEvent> ev = obs::tracer().events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].name, "test.scope");
  EXPECT_EQ(ev[0].phase, 'B');
  EXPECT_EQ(ev[1].phase, 'E');
  obs::registry().reset();
  obs::tracer().clear();
}

// --- rolling windows ------------------------------------------------------

TEST(RollingSeries, WindowedStatsCoverOnlyTheRequestedTicks) {
  obs::RollingSeries ring(64);
  ring.record(0, 10);
  ring.record(1, 20);
  ring.record(1, 30);
  ring.record(5, 40);

  const obs::WindowStats last1 = ring.last(5, 1);  // tick 5 only
  EXPECT_EQ(last1.count, 1);
  EXPECT_EQ(last1.sum, 40);

  const obs::WindowStats last5 = ring.last(5, 5);  // ticks 1..5
  EXPECT_EQ(last5.count, 3);
  EXPECT_EQ(last5.sum, 90);
  EXPECT_EQ(last5.min, 20);
  EXPECT_EQ(last5.max, 40);

  const obs::WindowStats all = ring.last(5, 100);  // clamped to capacity
  EXPECT_EQ(all.count, 4);
  EXPECT_EQ(all.sum, 100);
}

TEST(RollingSeries, StaleSlotsAreLazilyOverwrittenOnWraparound) {
  obs::RollingSeries ring(4);
  ring.record(0, 100);  // slot 0
  ring.record(4, 7);    // same slot, 4 ticks later: must evict tick 0
  const obs::WindowStats w = ring.last(4, 4);
  EXPECT_EQ(w.count, 1);
  EXPECT_EQ(w.sum, 7);

  // An idle stretch leaves only stale slots behind: reads ignore them.
  EXPECT_EQ(ring.last(100, 4).count, 0);
}

TEST(RollingHistogram, MergedPercentilesSpanTheWindow) {
  obs::RollingHistogram ring({10, 100, 1000}, 64);
  for (i64 t = 0; t < 10; ++t) ring.record(t, t < 9 ? 5 : 500);

  const obs::HistogramData recent = ring.merged(9, 10);
  EXPECT_EQ(recent.count, 10);
  EXPECT_LE(recent.percentile(0.50), 10.0);
  EXPECT_GT(recent.percentile(0.99), 100.0);

  // A 1-tick window sees only the last sample.
  EXPECT_EQ(ring.merged(9, 1).count, 1);
  EXPECT_EQ(ring.merged(9, 1).sum, 500);
}

// --- prometheus exposition ------------------------------------------------

TEST(Prometheus, SanitizesAndPrefixesMetricNames) {
  EXPECT_EQ(obs::prometheus_name("service.request_us"),
            "tp_service_request_us");
  EXPECT_EQ(obs::prometheus_name("odd-name/x"), "tp_odd_name_x");
}

TEST(Prometheus, TextExpositionIsGolden) {
  obs::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add(reg.counter("svc.requests"), 3);
  reg.set(reg.gauge("svc.depth"), 2);
  const obs::HistogramHandle h = reg.histogram("svc.lat_us", {10, 100});
  reg.record(h, 5);
  reg.record(h, 50);
  reg.record(h, 5000);  // overflow bucket

  EXPECT_EQ(obs::prometheus_text(reg.snapshot()),
            "# TYPE tp_svc_requests counter\n"
            "tp_svc_requests 3\n"
            "# TYPE tp_svc_depth gauge\n"
            "tp_svc_depth 2\n"
            "# TYPE tp_svc_lat_us histogram\n"
            "tp_svc_lat_us_bucket{le=\"10\"} 1\n"
            "tp_svc_lat_us_bucket{le=\"100\"} 2\n"
            "tp_svc_lat_us_bucket{le=\"+Inf\"} 3\n"
            "tp_svc_lat_us_sum 5055\n"
            "tp_svc_lat_us_count 3\n");
}

// --- complete trace events ------------------------------------------------

TEST(Tracer, CompleteEventsCarryDurationAndNeedNoNesting) {
  obs::Tracer tracer;
  tracer.set_enabled(true);
  // Interleaved completes (impossible with LIFO begin/end pairs).
  tracer.complete("r1 plan", 5000, "service");
  tracer.complete("r2 plan", 2000, "service");

  const std::vector<obs::TraceEvent> ev = tracer.events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].phase, 'X');
  EXPECT_EQ(ev[0].name, "r1 plan");
  EXPECT_EQ(ev[0].dur_ns, 5000);
  EXPECT_EQ(ev[1].dur_ns, 2000);

  std::ostringstream os;
  obs::export_chrome_trace(tracer, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5.000"), std::string::npos);  // µs precision
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
}

}  // namespace
}  // namespace tp
