// Tests for the placement search (E15): exhaustive optimum on tiny tori,
// annealing sanity, and the optimality of linear placements among all
// same-size placements where enumeration is feasible.

#include <gtest/gtest.h>

#include "src/core/optimize.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Exhaustive, LinearPlacementIsOptimalOnT3_2) {
  // Every 3-subset of T_3^2's nodes: none beats the linear placement.
  Torus t(2, 3);
  const SearchResult best =
      exhaustive_best_placement(t, 3, RouterKind::Odr);
  const double linear = odr_loads(t, linear_placement(t)).max_load();
  EXPECT_EQ(best.evaluated, binomial(9, 3));
  EXPECT_LE(best.emax, linear + 1e-9);
  EXPECT_GE(best.emax, blaum_lower_bound(3, 2) - 1e-9);
  // ... and in fact it cannot do better: linear achieves the optimum.
  EXPECT_NEAR(best.emax, linear, 1e-9);
}

TEST(Exhaustive, LinearPlacementIsOptimalOnT4_2) {
  Torus t(2, 4);
  const SearchResult best =
      exhaustive_best_placement(t, 4, RouterKind::Odr);
  const double linear = odr_loads(t, linear_placement(t)).max_load();
  EXPECT_EQ(best.evaluated, binomial(16, 4));
  EXPECT_NEAR(best.emax, linear, 1e-9);  // 2.0: the diagonal is optimal
}

TEST(Exhaustive, FindsStrictlyBetterThanClustered) {
  Torus t(2, 4);
  const SearchResult best =
      exhaustive_best_placement(t, 4, RouterKind::Odr);
  const double clustered =
      odr_loads(t, clustered_placement(t, 4)).max_load();
  EXPECT_LT(best.emax, clustered);
}

TEST(Exhaustive, GuardsAgainstBlowup) {
  Torus t(3, 4);  // C(64, 16) is astronomical
  EXPECT_THROW(exhaustive_best_placement(t, 16, RouterKind::Odr), Error);
  Torus small(2, 3);
  EXPECT_THROW(exhaustive_best_placement(small, 1, RouterKind::Odr), Error);
}

TEST(Anneal, ReachesTheExhaustiveOptimumOnT4_2) {
  Torus t(2, 4);
  const SearchResult exact =
      exhaustive_best_placement(t, 4, RouterKind::Odr);
  const SearchResult annealed =
      anneal_placement(t, 4, RouterKind::Odr, 800, 7);
  EXPECT_NEAR(annealed.emax, exact.emax, 1e-9);
  EXPECT_EQ(annealed.placement.size(), 4);
}

TEST(Anneal, NeverBeatsTheLowerBoundAndIsDeterministic) {
  Torus t(2, 6);
  const SearchResult a = anneal_placement(t, 6, RouterKind::Odr, 400, 11);
  const SearchResult b = anneal_placement(t, 6, RouterKind::Odr, 400, 11);
  EXPECT_EQ(a.placement.nodes(), b.placement.nodes());
  EXPECT_GE(a.emax, blaum_lower_bound(6, 2) - 1e-9);
  // The annealed result is at least as good as a random placement.
  const double random = odr_loads(t, random_placement(t, 6, 11)).max_load();
  EXPECT_LE(a.emax, random + 1e-9);
}

TEST(Anneal, CanSearchUnderUdrToo) {
  Torus t(2, 4);
  const SearchResult result =
      anneal_placement(t, 4, RouterKind::Udr, 300, 3);
  EXPECT_GT(result.emax, 0.0);
  EXPECT_LE(result.emax,
            udr_loads(t, linear_placement(t)).max_load() + 1e-9);
}

TEST(Anneal, ValidatesArguments) {
  Torus t(2, 4);
  EXPECT_THROW(anneal_placement(t, 1, RouterKind::Odr, 10, 1), Error);
  EXPECT_THROW(anneal_placement(t, 4, RouterKind::Odr, 0, 1), Error);
  EXPECT_THROW(anneal_placement(t, 99, RouterKind::Odr, 10, 1), Error);
}

}  // namespace
}  // namespace tp
