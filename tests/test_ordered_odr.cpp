// Tests for ODR with a custom dimension-correction order, and the
// order-invariance of E_max on linear placements.

#include <gtest/gtest.h>

#include <set>

#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/odr.h"
#include "src/util/combinatorics.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(OrderedOdr, ReversedOrderCorrectsLastDimensionFirst) {
  Torus t(3, 5);
  OdrRouter reversed(SmallVec<i32>{2, 1, 0});
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{1, 1, 1});
  const Path path = reversed.canonical_path(t, p, q);
  path.verify_minimal(t);
  ASSERT_EQ(path.length(), 3);
  // Dimension sequence along the path must be 2, 1, 0.
  EXPECT_EQ(t.link(path.edges[0]).dim, 2);
  EXPECT_EQ(t.link(path.edges[1]).dim, 1);
  EXPECT_EQ(t.link(path.edges[2]).dim, 0);
}

TEST(OrderedOdr, NameIncludesOrder) {
  OdrRouter reversed(SmallVec<i32>{1, 0});
  EXPECT_EQ(reversed.name(), "ODR[1,0]");
}

TEST(OrderedOdr, InvalidOrdersRejected) {
  Torus t(2, 4);
  EXPECT_THROW(OdrRouter(SmallVec<i32>{0}).canonical_path(t, 0, 1), Error);
  EXPECT_THROW(OdrRouter(SmallVec<i32>{0, 0}).canonical_path(t, 0, 1),
               Error);
  EXPECT_THROW(OdrRouter(SmallVec<i32>{0, 2}).canonical_path(t, 0, 1),
               Error);
}

TEST(OrderedOdr, IdentityOrderMatchesDefault) {
  Torus t(2, 5);
  OdrRouter explicit_identity(SmallVec<i32>{0, 1});
  OdrRouter def;
  for (NodeId p = 0; p < t.num_nodes(); p += 3)
    for (NodeId q = 0; q < t.num_nodes(); q += 2)
      EXPECT_EQ(explicit_identity.canonical_path(t, p, q).edges,
                def.canonical_path(t, p, q).edges);
}

TEST(OrderedOdr, EveryOrderYieldsMinimalPaths) {
  Torus t(3, 4);
  SmallVec<i32> dims{0, 1, 2};
  const NodeId p = t.node_id(Coord{0, 3, 2});
  const NodeId q = t.node_id(Coord{2, 1, 0});
  for_each_permutation(dims, [&](const SmallVec<i32>& order) {
    OdrRouter router{SmallVec<i32>(order.begin(), order.end())};
    router.canonical_path(t, p, q).verify_minimal(t);
  });
}

TEST(OrderedOdr, EmaxInvariantUnderOrderOnLinearPlacements) {
  // The all-ones linear placement is symmetric under coordinate
  // permutation, so E_max cannot depend on the correction order.
  for (i32 k : {4, 5, 6}) {
    Torus t(3, k);
    const Placement p = linear_placement(t);
    const double base = odr_loads(t, p).max_load();
    SmallVec<i32> dims{0, 1, 2};
    for_each_permutation(dims, [&](const SmallVec<i32>& order) {
      const double emax =
          odr_loads_ordered(t, p, SmallVec<i32>(order.begin(), order.end()))
              .max_load();
      EXPECT_NEAR(emax, base, 1e-9) << "k=" << k;
    });
  }
}

TEST(OrderedOdr, LoadDistributionDiffersEvenIfMaxDoesNot) {
  // The per-link distribution shifts with the order (different dimensions
  // carry the boundary roles), even though the maximum is invariant.
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const LoadMap identity = odr_loads(t, p);
  const LoadMap reversed =
      odr_loads_ordered(t, p, SmallVec<i32>{2, 1, 0});
  EXPECT_GT(identity.max_abs_diff(reversed), 0.5);
  EXPECT_NEAR(identity.total_load(), reversed.total_load(), 1e-9);
}

TEST(OrderedOdr, OrderedLoadsConserve) {
  Torus t(Radices{3, 4});  // mixed radix works too
  const Placement p(t, {0, 5, 7, 10}, "manual");
  const double expected = expected_total_load(t, p);
  EXPECT_NEAR(odr_loads_ordered(t, p, SmallVec<i32>{1, 0}).total_load(),
              expected, 1e-9);
}

}  // namespace
}  // namespace tp
