// Tests for the thread-parallel load analyzers and the block partitioner.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "src/load/complete_exchange.h"
#include "src/obs/registry.h"
#include "src/placement/placement.h"
#include "src/util/error.h"
#include "src/util/parallel.h"
#include "src/util/worker_context.h"

namespace tp {
namespace {

TEST(ParallelFor, CoversTheRangeExactlyOnce) {
  for (i32 threads : {1, 2, 3, 7}) {
    for (i64 count : {0, 1, 5, 20, 21}) {
      std::mutex mu;
      std::set<i64> seen;
      parallel_for_blocks(count, threads, [&](i32, i64 lo, i64 hi) {
        std::scoped_lock lock(mu);
        for (i64 i = lo; i < hi; ++i)
          EXPECT_TRUE(seen.insert(i).second) << "index covered twice";
      });
      EXPECT_EQ(static_cast<i64>(seen.size()), count)
          << "threads=" << threads << " count=" << count;
    }
  }
}

TEST(ParallelFor, WorkerIndicesAreDistinct) {
  std::mutex mu;
  std::set<i32> workers;
  parallel_for_blocks(100, 4, [&](i32 w, i64, i64) {
    std::scoped_lock lock(mu);
    workers.insert(w);
  });
  EXPECT_EQ(workers.size(), 4u);
}

TEST(ParallelFor, Validation) {
  EXPECT_THROW(parallel_for_blocks(-1, 1, [](i32, i64, i64) {}), Error);
  EXPECT_THROW(parallel_for_blocks(1, 0, [](i32, i64, i64) {}), Error);
}

TEST(ParallelFor, DefaultThreadsIsPositive) {
  EXPECT_GE(default_threads(), 1);
}

TEST(ParallelLoads, OdrBitIdenticalToSerial) {
  for (i32 threads : {1, 2, 4}) {
    Torus t(3, 5);
    const Placement p = linear_placement(t);
    const LoadMap serial = odr_loads(t, p);
    const LoadMap parallel = odr_loads_parallel(t, p, threads);
    EXPECT_EQ(serial.max_abs_diff(parallel), 0.0) << "threads=" << threads;
  }
}

TEST(ParallelLoads, OdrBitIdenticalWithTieSplitting) {
  Torus t(2, 6);
  const Placement p = multiple_linear_placement(t, 2);
  const LoadMap serial = odr_loads(t, p, TieBreak::BothDirections);
  const LoadMap parallel =
      odr_loads_parallel(t, p, 3, TieBreak::BothDirections);
  EXPECT_EQ(serial.max_abs_diff(parallel), 0.0);
}

TEST(ParallelLoads, UdrMatchesSerialToReductionPrecision) {
  // UDR weights like 1/3 are not exactly representable, so the per-worker
  // partial sums can differ from the serial order by an ulp or two.
  for (i32 threads : {2, 5}) {
    Torus t(3, 4);
    const Placement p = linear_placement(t);
    const LoadMap serial = udr_loads(t, p);
    const LoadMap parallel = udr_loads_parallel(t, p, threads);
    EXPECT_LT(serial.max_abs_diff(parallel), 1e-12) << "threads=" << threads;
  }
}

TEST(ParallelLoads, MoreThreadsThanSources) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);  // 3 processors
  const LoadMap parallel = odr_loads_parallel(t, p, 16);
  EXPECT_EQ(parallel.max_abs_diff(odr_loads(t, p)), 0.0);
}

TEST(ParallelLoads, RandomPlacementAgreement) {
  Torus t(Radices{4, 5});
  const Placement p = random_placement(t, 9, 31);
  EXPECT_LT(udr_loads_parallel(t, p, 3).max_abs_diff(udr_loads(t, p)),
            1e-12);
}

TEST(ParallelLoads, PairsEvaluatedExactUnderThreads) {
  // Counter recording is not atomic, so the parallel analyzers must tally
  // per worker and record once after the join — the count has to be exact,
  // not "approximately |P|(|P|-1) minus lost increments".
  obs::MetricsRegistry& reg = obs::registry();
  reg.set_enabled(true);
  reg.reset();
  Torus t(2, 6);
  const Placement p = linear_placement(t);  // |P| = 6
  const i64 expect = p.size() * (p.size() - 1);

  odr_loads_parallel(t, p, 4);
  // Keep the snapshot alive while reading into it: counter() returns a
  // pointer into the snapshot, not into the registry.
  const obs::MetricsSnapshot odr_snap = reg.snapshot();
  const i64* odr_pairs = odr_snap.counter("load.pairs_evaluated");
  ASSERT_NE(odr_pairs, nullptr);
  EXPECT_EQ(*odr_pairs, expect);

  reg.reset();
  udr_loads_parallel(t, p, 4);
  const obs::MetricsSnapshot udr_snap = reg.snapshot();
  const i64* udr_pairs = udr_snap.counter("load.pairs_evaluated");
  ASSERT_NE(udr_pairs, nullptr);
  EXPECT_EQ(*udr_pairs, expect);

  reg.set_enabled(false);
  reg.reset();
}

TEST(WorkerContext, PoolWorkerScopeNestsAndRestores) {
  EXPECT_FALSE(in_pool_worker());
  {
    const PoolWorkerScope outer;
    EXPECT_TRUE(in_pool_worker());
    {
      const PoolWorkerScope inner;  // a worker fanning out stays a worker
      EXPECT_TRUE(in_pool_worker());
    }
    EXPECT_TRUE(in_pool_worker());
  }
  EXPECT_FALSE(in_pool_worker());
}

TEST(ParallelFor, EveryBlockRunsAsAPoolWorker) {
  // All three execution shapes — the workers == 1 inline fast path, the
  // spawned threads, and the caller-inline last block — must carry the
  // pool-worker mark, or nested instrumentation would race the registry
  // on exactly one of them (which is how the original bug hid: the
  // caller-inline block raced only when a sibling thread recorded too).
  for (const i32 threads : {1, 4}) {
    std::atomic<int> unmarked{0};
    parallel_for_blocks(64, threads, [&](i32, i64, i64) {
      if (!in_pool_worker()) ++unmarked;
    });
    EXPECT_EQ(unmarked.load(), 0) << "threads=" << threads;
    EXPECT_FALSE(in_pool_worker()) << "mark leaked past the join";
  }
}

TEST(ParallelFor, NestedInstrumentationIsDroppedNotRaced) {
  // TSan regression for the race this PR fixed: the routers count
  // router.paths_enumerated / router.tie_breaks via TP_OBS_COUNT deep
  // inside the per-source accumulators, so an enabled registry used to
  // take plain unsynchronized increments from every sweep worker at
  // once.  The registry now reports disabled on pool workers: nested
  // records are dropped identically for every thread count, and only the
  // post-join reduced tallies land.  (Run under the tsan preset this
  // test failed before the fix and is silent after.)
  obs::MetricsRegistry& reg = obs::registry();
  reg.set_enabled(true);
  reg.reset();
  Torus t(2, 6);
  const Placement p = linear_placement(t);

  odr_loads_parallel(t, p, 1);
  const obs::MetricsSnapshot one = reg.snapshot();
  reg.reset();
  odr_loads_parallel(t, p, 4);
  const obs::MetricsSnapshot four = reg.snapshot();
  reg.set_enabled(false);
  reg.reset();

  // The worker-side router counter never fires (the name may exist from
  // an earlier call site resolution; the value must be zero)...
  for (const obs::MetricsSnapshot* snap : {&one, &four}) {
    const i64* paths = snap->counter("router.paths_enumerated");
    if (paths != nullptr) {
      EXPECT_EQ(*paths, 0);
    }
  }
  // ...while the reduced post-join tally is exact for both widths, so
  // registry contents are thread-count invariant.
  const i64 expect = p.size() * (p.size() - 1);
  const i64* pairs_one = one.counter("load.pairs_evaluated");
  const i64* pairs_four = four.counter("load.pairs_evaluated");
  ASSERT_NE(pairs_one, nullptr);
  ASSERT_NE(pairs_four, nullptr);
  EXPECT_EQ(*pairs_one, expect);
  EXPECT_EQ(*pairs_four, expect);
  EXPECT_EQ(one.counters, four.counters);
}

}  // namespace
}  // namespace tp
