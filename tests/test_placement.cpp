// Tests for placements (Definitions 2, 10; Section 5): sizes, membership,
// uniformity, and the equivalences the paper states.

#include <gtest/gtest.h>

#include <set>

#include "src/placement/placement.h"
#include "src/placement/uniformity.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Placement, ConstructionDeduplicatesAndSorts) {
  Torus t(2, 3);
  Placement p(t, {4, 2, 4, 0}, "manual");
  EXPECT_EQ(p.size(), 3);
  EXPECT_EQ(p.nodes(), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(1));
  EXPECT_EQ(p.name(), "manual");
}

TEST(Placement, RejectsForeignNodesAndTori) {
  Torus t(2, 3);
  EXPECT_THROW(Placement(t, {9}, "bad"), Error);
  Placement p(t, {0}, "ok");
  Torus other(2, 4);
  EXPECT_THROW(p.check_torus(other), Error);
}

TEST(LinearPlacement, SizeIsKToTheDMinus1) {
  for (i32 d = 1; d <= 4; ++d)
    for (i32 k = 2; k <= 6; ++k) {
      Torus t(d, k);
      EXPECT_EQ(linear_placement(t).size(), powi(k, d - 1))
          << "d=" << d << " k=" << k;
    }
}

TEST(LinearPlacement, MembersSatisfyTheEquation) {
  Torus t(3, 5);
  const i32 c = 2;
  Placement p = linear_placement(t, c);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    i64 sum = 0;
    for (i32 d = 0; d < 3; ++d) sum += t.coord_of(n, d);
    EXPECT_EQ(p.contains(n), mod_norm(sum, 5) == c);
  }
}

TEST(LinearPlacement, ResidueClassesPartitionTheTorus) {
  Torus t(2, 4);
  std::set<NodeId> all;
  for (i32 c = 0; c < 4; ++c) {
    const Placement cls = linear_placement(t, c);
    for (NodeId n : cls.nodes()) EXPECT_TRUE(all.insert(n).second);
  }
  EXPECT_EQ(static_cast<i64>(all.size()), t.num_nodes());
}

TEST(LinearPlacement, GeneralCoefficients) {
  // Definition 10 with coefficients (1, 2) over Z_5: still k^{d-1} nodes
  // because coefficient 1 is coprime to 5.
  Torus t(2, 5);
  Placement p = linear_placement(t, SmallVec<i32>{1, 2}, 0);
  EXPECT_EQ(p.size(), 5);
  for (NodeId n : p.nodes())
    EXPECT_EQ(mod_norm(t.coord_of(n, 0) + 2 * t.coord_of(n, 1), 5), 0);
}

TEST(LinearPlacement, RequiresACoprimeCoefficient) {
  Torus t(2, 4);
  EXPECT_THROW(linear_placement(t, SmallVec<i32>{2, 2}, 0), Error);
  // (2, 3): 3 is coprime to 4, fine.
  EXPECT_EQ(linear_placement(t, SmallVec<i32>{2, 3}, 0).size(), 4);
}

TEST(LinearPlacement, RequiresUniformRadix) {
  Torus t(Radices{3, 4});
  EXPECT_THROW(linear_placement(t), Error);
}

TEST(LinearPlacement, IsUniform) {
  for (i32 d = 2; d <= 4; ++d) {
    Torus t(d, 4);
    EXPECT_TRUE(is_uniform(t, linear_placement(t))) << "d=" << d;
  }
}

TEST(MultipleLinearPlacement, SizeIsTTimesKToTheDMinus1) {
  Torus t(3, 4);
  for (i32 tt = 1; tt <= 4; ++tt)
    EXPECT_EQ(multiple_linear_placement(t, tt).size(), tt * 16);
}

TEST(MultipleLinearPlacement, IsUnionOfResidueClasses) {
  Torus t(2, 5);
  Placement p = multiple_linear_placement(t, 3);
  std::set<NodeId> expected;
  for (i32 c = 0; c < 3; ++c) {
    const Placement cls = linear_placement(t, c);
    expected.insert(cls.nodes().begin(), cls.nodes().end());
  }
  EXPECT_EQ(std::set<NodeId>(p.nodes().begin(), p.nodes().end()), expected);
}

TEST(MultipleLinearPlacement, TEqualsKIsFullPopulation) {
  Torus t(2, 4);
  EXPECT_EQ(multiple_linear_placement(t, 4).size(), t.num_nodes());
}

TEST(MultipleLinearPlacement, BoundsChecked) {
  Torus t(2, 4);
  EXPECT_THROW(multiple_linear_placement(t, 0), Error);
  EXPECT_THROW(multiple_linear_placement(t, 5), Error);
}

TEST(MultipleLinearPlacement, IsUniform) {
  Torus t(3, 4);
  for (i32 tt = 1; tt <= 3; ++tt)
    EXPECT_TRUE(is_uniform(t, multiple_linear_placement(t, tt)));
}

TEST(ShiftedDiagonal, EquivalentToLinearPlacement) {
  // The paper notes the shifted diagonal placement of Blaum et al. is a
  // special case of linear placements.
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k = 3; k <= 5; ++k) {
      Torus t(d, k);
      for (i32 shift = 0; shift < k; ++shift) {
        EXPECT_EQ(shifted_diagonal_placement(t, shift).nodes(),
                  linear_placement(t, shift).nodes())
            << "d=" << d << " k=" << k << " shift=" << shift;
      }
    }
}

TEST(FullPopulation, ContainsEveryNode) {
  Torus t(2, 4);
  Placement p = full_population(t);
  EXPECT_EQ(p.size(), t.num_nodes());
  for (NodeId n = 0; n < t.num_nodes(); ++n) EXPECT_TRUE(p.contains(n));
}

TEST(RandomPlacement, SizeAndDeterminism) {
  Torus t(3, 4);
  Placement a = random_placement(t, 10, 99);
  Placement b = random_placement(t, 10, 99);
  Placement c = random_placement(t, 10, 100);
  EXPECT_EQ(a.size(), 10);
  EXPECT_EQ(a.nodes(), b.nodes());
  EXPECT_NE(a.nodes(), c.nodes());  // overwhelmingly likely
}

TEST(RandomPlacement, CoversTheTorusAtFullSize) {
  Torus t(2, 3);
  EXPECT_EQ(random_placement(t, 9, 1).size(), 9);
  EXPECT_THROW(random_placement(t, 10, 1), Error);
}

TEST(ClusteredPlacement, TakesAPrefixOfNodeIds) {
  Torus t(2, 4);
  Placement p = clustered_placement(t, 5);
  EXPECT_EQ(p.nodes(), (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(ClusteredPlacement, IsNotUniform) {
  Torus t(2, 4);
  EXPECT_FALSE(is_uniform(t, clustered_placement(t, 4)));
}

TEST(SubtorusPlacement, OneLayer) {
  Torus t(3, 4);
  Placement p = subtorus_placement(t, 1, 2);
  EXPECT_EQ(p.size(), 16);
  for (NodeId n : p.nodes()) EXPECT_EQ(t.coord_of(n, 1), 2);
  // Uniform along the other dimensions but not along dim 1.
  EXPECT_TRUE(is_uniform_along(t, p, 0));
  EXPECT_FALSE(is_uniform_along(t, p, 1));
  EXPECT_TRUE(is_uniform_along(t, p, 2));
}

TEST(Uniformity, SubtorusCountsSumToPlacementSize) {
  Torus t(3, 4);
  Placement p = random_placement(t, 20, 5);
  for (i32 d = 0; d < 3; ++d) {
    const auto counts = subtorus_counts(t, p, d);
    i64 sum = 0;
    for (i64 c : counts) sum += c;
    EXPECT_EQ(sum, p.size());
  }
}

TEST(Uniformity, UniformDimensionsOfLinearPlacement) {
  Torus t(3, 5);
  EXPECT_EQ(uniform_dimensions(t, linear_placement(t)).size(), 3u);
}

TEST(Uniformity, LinearPlacementLayerCounts) {
  // Each principal subtorus holds exactly k^{d-2} processors (the paper's
  // remark in Section 5).
  Torus t(3, 4);
  Placement p = linear_placement(t);
  for (i32 d = 0; d < 3; ++d)
    for (i64 c : subtorus_counts(t, p, d)) EXPECT_EQ(c, 4);
}

}  // namespace
}  // namespace tp
