// Tests for placement serialization and the "file:" factory spec.

#include <gtest/gtest.h>

#include <sstream>

#include "src/placement/factory.h"
#include "src/placement/io.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(PlacementIo, RoundTripThroughAStream) {
  Torus t(3, 5);
  const Placement original = linear_placement(t, 2);
  std::stringstream ss;
  write_placement(ss, t, original);
  const Placement loaded = read_placement(ss, t);
  EXPECT_EQ(loaded.nodes(), original.nodes());
  EXPECT_EQ(loaded.name(), original.name());
}

TEST(PlacementIo, RoundTripThroughAFile) {
  Torus t(2, 4);
  const Placement original = random_placement(t, 7, 42);
  const std::string path = ::testing::TempDir() + "/tp_placement.txt";
  save_placement(path, t, original);
  const Placement loaded = load_placement(path, t);
  EXPECT_EQ(loaded.nodes(), original.nodes());
  // ... and via the factory spec.
  const Placement via_factory = make_placement(t, "file:" + path);
  EXPECT_EQ(via_factory.nodes(), original.nodes());
}

TEST(PlacementIo, RejectsWrongTorus) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  std::stringstream ss;
  write_placement(ss, t, p);
  Torus other(2, 5);
  EXPECT_THROW(read_placement(ss, other), Error);
}

TEST(PlacementIo, RejectsWrongDimensionality) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  std::stringstream ss;
  write_placement(ss, t, p);
  Torus other(3, 4);
  EXPECT_THROW(read_placement(ss, other), Error);
}

TEST(PlacementIo, RejectsGarbage) {
  Torus t(2, 4);
  {
    std::stringstream ss("not a placement\n");
    EXPECT_THROW(read_placement(ss, t), Error);
  }
  {
    std::stringstream ss(
        "torusplace-placement v1\nradices 4 4\nname x\nnodes 2\n0 0\n");
    EXPECT_THROW(read_placement(ss, t), Error);  // truncated
  }
  {
    std::stringstream ss(
        "torusplace-placement v1\nradices 4 4\nname x\nnodes 1\n0 9\n");
    EXPECT_THROW(read_placement(ss, t), Error);  // coordinate out of range
  }
  {
    std::stringstream ss(
        "torusplace-placement v1\nradices 4 4\nname x\nnodes 2\n0 0\n0 0\n");
    EXPECT_THROW(read_placement(ss, t), Error);  // duplicate node
  }
}

TEST(PlacementIo, MissingFile) {
  Torus t(2, 4);
  EXPECT_THROW(load_placement("/nonexistent/nowhere.txt", t), Error);
  EXPECT_THROW(make_placement(t, "file:/nonexistent/nowhere.txt"), Error);
}

TEST(PlacementIo, EmptyPlacementSurvives) {
  Torus t(2, 3);
  const Placement empty(t, {}, "empty");
  std::stringstream ss;
  write_placement(ss, t, empty);
  const Placement loaded = read_placement(ss, t);
  EXPECT_EQ(loaded.size(), 0);
}

}  // namespace
}  // namespace tp
