// Tests for the in-process profiler (src/obs/phase_stack.h + profiler.h):
// phase attribution, thread-count invariance of paths/calls (the
// parallel_for adoption hooks and the engine pool), the table-driven ODR
// analyzer's equivalence to the enumerating one, the SIGPROF sampler's
// lifecycle, and the collapsed-stack / JSON output formats.
//
// The profiler is process-global; every test that starts it stops and
// resets it before returning so later tests (and the disabled-mode test)
// see a quiescent, empty profiler.

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/torusplace.h"
#include "src/obs/obs.h"
#include "src/service/admin.h"
#include "src/service/service.h"
#include "src/util/parallel.h"

namespace tp {
namespace {

double g_sink = 0.0;

obs::ProfilerConfig phase_only() {
  obs::ProfilerConfig config;
  config.sampling = false;
  config.counters = false;
  return config;
}

/// path -> calls for every row of a report.
std::map<std::vector<std::string>, i64> calls_by_path(
    const obs::PhaseReport& report) {
  std::map<std::vector<std::string>, i64> out;
  for (const obs::PhaseRow& row : report.rows) out[row.path] += row.calls;
  return out;
}

void spin_ns(i64 ns) {
  const obs::Stopwatch watch;
  while (watch.elapsed_ns() < ns) g_sink += 1.0;
}

// --- disabled mode --------------------------------------------------------

TEST(ProfilerDisabled, PhasesAreNoOps) {
  ASSERT_FALSE(obs::profiler().enabled());
  {
    TP_PROF_PHASE("should.not.appear");
    g_sink += 1.0;
  }
  Torus torus(2, 6);
  g_sink += odr_loads(torus, linear_placement(torus)).max_load();
  const obs::PhaseReport report = obs::profiler().report();
  EXPECT_TRUE(report.rows.empty());
  EXPECT_EQ(report.total_samples, 0);
}

// --- phase attribution ----------------------------------------------------

TEST(PhaseAttribution, OdrLoadsBreaksDownIntoRouteAndWalk) {
  Torus torus(3, 4);
  const Placement p = linear_placement(torus);
  obs::profiler().start(phase_only());
  g_sink += odr_loads(torus, p).max_load();
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  obs::profiler().reset();

  const auto calls = calls_by_path(report);
  const std::vector<std::string> root{"load.odr"};
  const std::vector<std::string> route{"load.odr", "odr.route"};
  const std::vector<std::string> walk{"load.odr", "odr.walk"};
  ASSERT_TRUE(calls.count(root)) << "missing load.odr root phase";
  ASSERT_TRUE(calls.count(route)) << "missing odr.route child phase";
  ASSERT_TRUE(calls.count(walk)) << "missing odr.walk child phase";
  EXPECT_EQ(calls.at(root), 1);
  // One route pass and one walk pass per source.
  EXPECT_EQ(calls.at(route), p.size());
  EXPECT_EQ(calls.at(walk), p.size());

  // Inclusive time of the root covers its children; self + children's
  // totals never exceed the root's total.
  i64 root_total = 0, child_total = 0;
  for (const obs::PhaseRow& row : report.rows) {
    if (row.path == root) root_total = row.total_ns;
    if (row.path == route || row.path == walk) child_total += row.total_ns;
  }
  EXPECT_GE(root_total, child_total);
  EXPECT_EQ(report.depth_overflow, 0);
  EXPECT_EQ(report.dropped_paths, 0);
}

TEST(PhaseAttribution, NestedSelfTimeExcludesChildren) {
  obs::profiler().start(phase_only());
  {
    TP_PROF_PHASE("parent");
    spin_ns(2'000'000);
    {
      TP_PROF_PHASE("child");
      spin_ns(2'000'000);
    }
  }
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  obs::profiler().reset();

  i64 parent_total = 0, parent_self = 0, child_total = 0;
  for (const obs::PhaseRow& row : report.rows) {
    if (row.path == std::vector<std::string>{"parent"}) {
      parent_total = row.total_ns;
      parent_self = row.self_ns;
    }
    if (row.path == std::vector<std::string>{"parent", "child"})
      child_total = row.total_ns;
  }
  EXPECT_GT(child_total, 0);
  EXPECT_GE(parent_total, child_total + parent_self);
  EXPECT_LT(parent_self, parent_total);
}

// --- thread-count invariance ----------------------------------------------

TEST(PhaseInvariance, ParallelForWorkersAdoptCallerPath) {
  const auto run = [](i32 threads) {
    obs::profiler().start(phase_only());
    {
      TP_PROF_PHASE("outer");
      parallel_for_blocks(64, threads, [](i32, i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) {
          TP_PROF_PHASE("inner");
          g_sink += static_cast<double>(i);
        }
      });
    }
    obs::profiler().stop();
    const obs::PhaseReport report = obs::profiler().report();
    obs::profiler().reset();
    return report;
  };

  const obs::PhaseReport serial = run(1);
  const obs::PhaseReport pooled = run(4);
  const auto a = calls_by_path(serial);
  const auto b = calls_by_path(pooled);
  // Identical paths with identical call counts — the nanoseconds differ,
  // the attribution does not.
  EXPECT_EQ(a, b);
  const std::vector<std::string> inner{"outer", "inner"};
  ASSERT_TRUE(b.count(inner));
  EXPECT_EQ(b.at(inner), 64);
  ASSERT_TRUE(b.count({"outer"}));
  EXPECT_EQ(b.at({"outer"}), 1);
  EXPECT_GE(pooled.threads, serial.threads);
}

TEST(PhaseInvariance, EnginePoolWidthDoesNotChangeAttribution) {
  const auto run = [](i32 threads) {
    obs::profiler().start(phase_only());
    {
      service::EngineConfig config;
      config.threads = threads;
      service::Engine engine(config);
      for (i32 k = 4; k <= 6; ++k) {
        service::Request req;
        req.key = service::make_query_key(Radices{k, k}, 1, RouterKind::Odr,
                                          service::QueryOp::Load);
        const service::Response resp = engine.run(req);
        EXPECT_TRUE(resp.ok);
      }
    }
    obs::profiler().stop();
    const obs::PhaseReport report = obs::profiler().report();
    obs::profiler().reset();
    return report;
  };

  const auto a = calls_by_path(run(1));
  const auto b = calls_by_path(run(4));
  EXPECT_EQ(a, b);
  const std::vector<std::string> compute{"service.compute"};
  ASSERT_TRUE(b.count(compute));
  EXPECT_EQ(b.at(compute), 3);  // one per distinct key
}

// --- table-driven ODR analyzer --------------------------------------------

TEST(TableAnalyzer, MatchesEnumeratingAnalyzerExactly) {
  for (const Radices& radices :
       {Radices{6, 6}, Radices{4, 4, 4}, Radices{3, 4, 5}}) {
    Torus torus(radices);
    const Placement p = torus.is_uniform_radix()
                            ? multiple_linear_placement(torus, 2)
                            : full_population(torus);
    const LoadMap a = odr_loads(torus, p);
    const LoadMap b = odr_loads_table(torus, p);
    EXPECT_EQ(a.max_abs_diff(b), 0.0)
        << "table analyzer diverged on the " << torus.num_nodes()
        << "-node torus";
    EXPECT_EQ(a.max_load(), b.max_load());
  }
}

TEST(TableAnalyzer, MatchesUnderBothDirectionsTieBreak) {
  Torus torus(2, 4);  // even radix: antipodal ties exist
  const Placement p = full_population(torus);
  const LoadMap a = odr_loads(torus, p, TieBreak::BothDirections);
  const LoadMap b = odr_loads_table(torus, p, TieBreak::BothDirections);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(TableAnalyzer, MeasureLoadsRoutesThroughTable) {
  Torus torus(3, 6);
  const Placement p = linear_placement(torus);
  const LoadMap a = measure_loads(torus, p, RouterKind::Odr, 1, false);
  const LoadMap b = measure_loads(torus, p, RouterKind::Odr, 1, true);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(TableAnalyzer, EngineConfigFlagYieldsIdenticalResults) {
  const service::QueryKey key = service::make_query_key(
      Radices{6, 6, 6}, 1, RouterKind::Odr, service::QueryOp::Load);
  const service::QueryResult plain = service::compute_query(key, 1, false);
  const service::QueryResult table = service::compute_query(key, 1, true);
  EXPECT_EQ(plain.measured_emax, table.measured_emax);
  EXPECT_EQ(plain.loads->max_abs_diff(*table.loads), 0.0);
}

// --- sampler ---------------------------------------------------------------

TEST(Sampler, StartSampleStopIsCleanAndAttributes) {
  obs::ProfilerConfig config;
  config.sampling = true;
  config.counters = false;
  config.sample_interval_us = 500;
  obs::profiler().start(config);
  ASSERT_TRUE(obs::profiler().sampling_enabled());

  obs::PhaseReport report;
  // CPU-time sampling: spin until samples arrive (bounded by 2 s of
  // wall — far beyond what ~ms of busy CPU at a 500 µs period needs).
  const obs::Stopwatch deadline;
  do {
    TP_PROF_PHASE("sampled.spin");
    spin_ns(20'000'000);
    report = obs::profiler().report();
  } while (report.total_samples == 0 &&
           deadline.elapsed_ns() < 2'000'000'000);
  obs::profiler().stop();
  report = obs::profiler().report();
  obs::profiler().reset();

  EXPECT_TRUE(report.sampling);
  EXPECT_GT(report.total_samples, 0);
  i64 attributed = 0;
  for (const obs::PhaseRow& row : report.rows)
    if (!row.path.empty() && row.path.back() == "sampled.spin")
      attributed += row.samples;
  EXPECT_GT(attributed, 0);
}

TEST(Sampler, RestartAfterStopRearms) {
  for (int round = 0; round < 2; ++round) {
    obs::ProfilerConfig config;
    config.counters = false;
    config.sample_interval_us = 500;
    obs::profiler().start(config);
    {
      TP_PROF_PHASE("rearm.spin");
      spin_ns(5'000'000);
    }
    obs::profiler().stop();
    obs::profiler().reset();
  }
  EXPECT_FALSE(obs::profiler().enabled());
}

// --- outputs ---------------------------------------------------------------

TEST(Output, CollapsedStacksAreWellFormed) {
  Torus torus(2, 6);
  obs::profiler().start(phase_only());
  g_sink += odr_loads(torus, linear_placement(torus)).max_load();
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  obs::profiler().reset();

  std::ostringstream out;
  obs::write_collapsed(report, out);
  std::istringstream lines(out.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no weight in: " << line;
    ASSERT_GT(space, 0u) << "empty path in: " << line;
    const std::string weight = line.substr(space + 1);
    ASSERT_FALSE(weight.empty());
    for (const char c : weight)
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)))
          << "non-numeric weight in: " << line;
    EXPECT_GT(std::stoll(weight), 0);
    const std::string path = line.substr(0, space);
    EXPECT_EQ(path.find(' '), std::string::npos)
        << "unescaped space in path: " << line;
  }
  EXPECT_GT(n, 0) << "collapsed output is empty";
}

TEST(Output, PhaseTableAndJsonCarryTheBreakdown) {
  Torus torus(2, 6);
  obs::profiler().start(phase_only());
  g_sink += odr_loads(torus, linear_placement(torus)).max_load();
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  obs::profiler().reset();

  const std::string table = obs::format_phase_table(report);
  EXPECT_NE(table.find("load.odr"), std::string::npos);
  EXPECT_NE(table.find("odr.route"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);

  const obs::JsonValue json = obs::phase_report_json(report);
  const obs::JsonValue* schema = json.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "torusplace-profile/1");
  const obs::JsonValue* rows = json.find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_TRUE(rows->is_array());
  EXPECT_FALSE(rows->items().empty());
}

TEST(Output, CoverageIsHighForARootWrappedWorkload) {
  Torus torus(3, 8);
  obs::profiler().start(phase_only());
  // Pay the one-time thread registration (ThreadState allocation) before
  // the measured epoch, then restart the wall clock: real workloads
  // amortize it over milliseconds, this test runs for far less.
  { TP_PROF_PHASE("warmup"); }
  obs::profiler().reset();
  {
    TP_PROF_PHASE("root");
    g_sink += odr_loads(torus, linear_placement(torus)).max_load();
  }
  obs::profiler().stop();
  const obs::PhaseReport report = obs::profiler().report();
  obs::profiler().reset();
  // The acceptance gate: root phases account for >= 90% of wall time.
  EXPECT_GE(report.coverage(), 0.90);
}

TEST(Output, StatuszExposesProfilerOnlyWhileEnabled) {
  service::Engine engine;
  const obs::JsonValue id(static_cast<i64>(1));
  const obs::JsonValue doc = obs::parse_json(R"({"op":"statusz"})");
  bool quit = false;

  const obs::JsonValue off = service::handle_admin(engine, doc, id, &quit);
  EXPECT_EQ(off.find("profiler"), nullptr);

  obs::profiler().start(phase_only());
  const obs::JsonValue on = service::handle_admin(engine, doc, id, &quit);
  obs::profiler().stop();
  obs::profiler().reset();
  const obs::JsonValue* prof = on.find("profiler");
  ASSERT_NE(prof, nullptr);
  const obs::JsonValue* enabled = prof->find("enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_TRUE(enabled->as_bool());
}

}  // namespace
}  // namespace tp
