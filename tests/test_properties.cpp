// Parameterized property sweeps over (d, k): the paper's invariants that
// must hold for *every* torus in the family, checked wholesale.
//
//   P1  load conservation: sum_l E(l) == sum of Lee distances      (all routers)
//   P2  every lower bound <= measured E_max                         (all routers)
//   P3  ODR specifies exactly one minimal path per pair
//   P4  UDR specifies exactly s! minimal paths per pair
//   P5  UDR max load <= ODR max load; adaptive <= UDR
//   P6  Theorem 1 cut: balance + exactly 4 k^{d-1} links (k even)
//   P7  hyperplane sweep: balance + Appendix bound on crossings
//   P8  Theorem 2/4 upper bounds hold
//   P9  linear placements are uniform; sizes are k^{d-1}

#include <gtest/gtest.h>

#include <tuple>

#include "src/bisection/dimension_cut.h"
#include "src/bisection/hyperplane_sweep.h"
#include "src/bounds/lower_bounds.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/uniformity.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"

namespace tp {
namespace {

class TorusSweep : public ::testing::TestWithParam<std::tuple<i32, i32>> {
 protected:
  i32 d() const { return std::get<0>(GetParam()); }
  i32 k() const { return std::get<1>(GetParam()); }
};

std::string torus_sweep_name(
    const ::testing::TestParamInfo<std::tuple<i32, i32>>& param_info) {
  std::string name = "d";
  name += std::to_string(std::get<0>(param_info.param));
  name += "_k";
  name += std::to_string(std::get<1>(param_info.param));
  return name;
}

std::string mult_sweep_name(
    const ::testing::TestParamInfo<std::tuple<i32, i32, i32>>& param_info) {
  std::string name = torus_sweep_name(
      {std::tuple<i32, i32>{std::get<0>(param_info.param),
                            std::get<1>(param_info.param)},
       param_info.index});
  name += "_t";
  name += std::to_string(std::get<2>(param_info.param));
  return name;
}

TEST_P(TorusSweep, P1_LoadConservation) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  const double expected = expected_total_load(t, p);
  EXPECT_NEAR(odr_loads(t, p).total_load(), expected, 1e-6 * expected + 1e-9);
  EXPECT_NEAR(udr_loads(t, p).total_load(), expected, 1e-6 * expected + 1e-9);
}

TEST_P(TorusSweep, P2_LowerBoundsRespected) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  const double bound = best_lower_bound(t, p);
  EXPECT_GE(odr_loads(t, p).max_load(), bound - 1e-9);
  EXPECT_GE(udr_loads(t, p).max_load(), bound - 1e-9);
}

TEST_P(TorusSweep, P3_OdrSinglePathMinimal) {
  Torus t(d(), k());
  OdrRouter odr;
  const Placement p = linear_placement(t);
  // Check a deterministic subsample of pairs to bound runtime.
  const auto& nodes = p.nodes();
  for (std::size_t i = 0; i < nodes.size(); i += 3)
    for (std::size_t j = 0; j < nodes.size(); j += 2) {
      if (nodes[i] == nodes[j]) continue;
      EXPECT_EQ(odr.num_paths(t, nodes[i], nodes[j]), 1);
      odr.canonical_path(t, nodes[i], nodes[j]).verify_minimal(t);
    }
}

TEST_P(TorusSweep, P4_UdrFactorialPaths) {
  Torus t(d(), k());
  UdrRouter udr;
  const Placement p = linear_placement(t);
  const auto& nodes = p.nodes();
  for (std::size_t i = 0; i < nodes.size(); i += 4)
    for (std::size_t j = 1; j < nodes.size(); j += 3) {
      if (nodes[i] == nodes[j]) continue;
      const i64 s = static_cast<i64>(
          UdrRouter::differing_dims(t, nodes[i], nodes[j]).size());
      EXPECT_EQ(udr.num_paths(t, nodes[i], nodes[j]), factorial(s));
    }
}

TEST_P(TorusSweep, P5_MorePathsFlattenLoad) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  EXPECT_LE(udr_loads(t, p).max_load(), odr_loads(t, p).max_load() + 1e-9);
}

TEST_P(TorusSweep, P6_Theorem1Cut) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  const auto result = best_dimension_cut(t, p);
  EXPECT_EQ(result.directed_edges, uniform_bisection_width(k(), d()));
  if (k() % 2 == 0) {
    EXPECT_EQ(result.imbalance, 0);
    EXPECT_TRUE(result.cut.bisects(t, p));
  } else {
    // Odd k: layers cannot split evenly; imbalance is one layer.
    EXPECT_LE(result.imbalance, p.size() / k());
  }
}

TEST_P(TorusSweep, P7_SweepBisection) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  const auto result = hyperplane_sweep_bisection(t, p);
  EXPECT_TRUE(result.cut.bisects(t, p));
  EXPECT_LE(result.array_crossings, sweep_separator_upper_bound(k(), d()));
  EXPECT_LE(result.directed_edges, bisection_width_upper_bound(k(), d()));
}

TEST_P(TorusSweep, P8_UpperBoundsHold) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  EXPECT_LE(odr_loads(t, p).max_load(), odr_linear_emax_upper(k(), d()) + 1e-9);
  EXPECT_LT(udr_loads(t, p).max_load(), udr_linear_emax_upper(k(), d()));
}

TEST_P(TorusSweep, P9_LinearPlacementShape) {
  Torus t(d(), k());
  const Placement p = linear_placement(t);
  EXPECT_EQ(p.size(), powi(k(), d() - 1));
  EXPECT_TRUE(is_uniform(t, p));
  // Exact ODR maxima match the reproduction formulas.
  const LoadMap loads = odr_loads(t, p);
  EXPECT_NEAR(loads.max_load(), odr_linear_emax_overall(k(), d()), 1e-9);
  if (d() >= 3) {
    EXPECT_NEAR(loads.max_load_in_dim(t, 1), odr_linear_emax(k(), d()), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimensionAndRadix, TorusSweep,
    ::testing::Values(std::tuple<i32, i32>{2, 3}, std::tuple<i32, i32>{2, 4},
                      std::tuple<i32, i32>{2, 5}, std::tuple<i32, i32>{2, 6},
                      std::tuple<i32, i32>{2, 7}, std::tuple<i32, i32>{2, 8},
                      std::tuple<i32, i32>{2, 9}, std::tuple<i32, i32>{2, 10},
                      std::tuple<i32, i32>{3, 3}, std::tuple<i32, i32>{3, 4},
                      std::tuple<i32, i32>{3, 5}, std::tuple<i32, i32>{3, 6},
                      std::tuple<i32, i32>{3, 7}, std::tuple<i32, i32>{3, 8},
                      std::tuple<i32, i32>{4, 3}, std::tuple<i32, i32>{4, 4},
                      std::tuple<i32, i32>{4, 5}, std::tuple<i32, i32>{5, 3}),
    torus_sweep_name);

// --- multiplicity sweep -------------------------------------------------------

class MultiplicitySweep
    : public ::testing::TestWithParam<std::tuple<i32, i32, i32>> {};

TEST_P(MultiplicitySweep, TheoremBoundsAndConservation) {
  const i32 d = std::get<0>(GetParam());
  const i32 k = std::get<1>(GetParam());
  const i32 t_mult = std::get<2>(GetParam());
  Torus torus(d, k);
  const Placement p = multiple_linear_placement(torus, t_mult);
  EXPECT_EQ(p.size(), t_mult * powi(k, d - 1));
  EXPECT_TRUE(is_uniform(torus, p));

  const LoadMap odr = odr_loads(torus, p);
  const LoadMap udr = udr_loads(torus, p);
  EXPECT_LE(odr.max_load(), multiple_odr_upper(t_mult, k, d) + 1e-9);
  EXPECT_LT(udr.max_load(), multiple_udr_upper(t_mult, k, d));
  const double expected = expected_total_load(torus, p);
  EXPECT_NEAR(odr.total_load(), expected, 1e-6 * expected + 1e-9);
  EXPECT_NEAR(udr.total_load(), expected, 1e-6 * expected + 1e-9);
  EXPECT_GE(odr.max_load(), blaum_lower_bound(p.size(), d) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TKSweep, MultiplicitySweep,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(4, 5, 6),
                       ::testing::Values(1, 2, 3)),
    mult_sweep_name);

}  // namespace
}  // namespace tp
