// Tests for exact rational arithmetic and the exact load analyzers.

#include <gtest/gtest.h>

#include "src/load/complete_exchange.h"
#include "src/load/exact_loads.h"
#include "src/load/formulas.h"
#include "src/util/error.h"
#include "src/util/rational.h"

namespace tp {
namespace {

// --- Rational ---------------------------------------------------------------

TEST(Rational, NormalizationAndAccessors) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(6, 3).num(), 2);
  EXPECT_EQ(Rational(6, 3).den(), 1);
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_THROW(Rational(1) / Rational(0), Error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(7, 7), Rational(1));
}

TEST(Rational, StringAndDouble) {
  EXPECT_EQ(Rational(3, 2).str(), "3/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

TEST(Rational, SumOfHarmonicLikeSeriesIsExact) {
  // 1/1 + 1/2 + ... + 1/10 = 7381/2520.
  Rational sum;
  for (i64 i = 1; i <= 10; ++i) sum += Rational(1, i);
  EXPECT_EQ(sum, Rational(7381, 2520));
}

TEST(Rational, CrossCancellationDelaysOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow intermediate products.
  const Rational big(1LL << 40, 3);
  const Rational inv(3, 1LL << 40);
  EXPECT_EQ(big * inv, Rational(1));
}

// --- exact loads -------------------------------------------------------------

TEST(ExactLoads, OdrMatchesDoubleAnalyzerExactly) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const LoadMap exact = odr_loads_exact(t, p).to_load_map(t);
      EXPECT_EQ(exact.max_abs_diff(odr_loads(t, p)), 0.0)
          << "d=" << d << " k=" << k;
    }
}

TEST(ExactLoads, UdrMatchesDoubleAnalyzerToFloatPrecision) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {3, 4, 5}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const LoadMap exact = udr_loads_exact(t, p).to_load_map(t);
      EXPECT_LT(exact.max_abs_diff(udr_loads(t, p)), 1e-12)
          << "d=" << d << " k=" << k;
    }
}

TEST(ExactLoads, ConservationIsExactlyAnInteger) {
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const Rational expected = expected_total_load_exact(t, p);
  EXPECT_EQ(expected.den(), 1);  // sum of Lee distances is an integer
  EXPECT_EQ(odr_loads_exact(t, p).total_load(), expected);
  EXPECT_EQ(udr_loads_exact(t, p).total_load(), expected);
}

TEST(ExactLoads, ConservationWithTieSplitting) {
  Torus t(2, 4);  // even k exercises the 1/2 weights
  const Placement p = linear_placement(t);
  const Rational expected = expected_total_load_exact(t, p);
  EXPECT_EQ(odr_loads_exact(t, p, TieBreak::BothDirections).total_load(),
            expected);
  EXPECT_EQ(udr_loads_exact(t, p, TieBreak::BothDirections).total_load(),
            expected);
}

TEST(ExactLoads, UdrMaximaAreExactRationals) {
  // d=3, k=4: the golden value 11/3 — now provably exact, not a float.
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  EXPECT_EQ(udr_loads_exact(t, p).max_load(), Rational(11, 3));
  // d=3, k=6: (5*36+12)/24 = 8 (the conjectured closed form).
  Torus t6(3, 6);
  EXPECT_EQ(udr_loads_exact(t6, linear_placement(t6)).max_load(),
            Rational(8));
}

TEST(ExactLoads, OdrMaximaMatchClosedFormsExactly) {
  Torus t(3, 8);
  const Placement p = linear_placement(t);
  EXPECT_EQ(odr_loads_exact(t, p).max_load(), Rational(32));  // floor(k/2)k
}

}  // namespace
}  // namespace tp
