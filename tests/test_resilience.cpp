// Graceful-degradation analysis (analysis/resilience.h): the single-fault
// invariant on the paper's Figure-1 exchange, baseline reproduction at
// fault rate 0, and byte-exact determinism of the JSONL output across
// runs and thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/resilience.h"
#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/simulate/fault.h"
#include "src/simulate/fault_schedule.h"
#include "src/util/error.h"

namespace tp {
namespace {

std::vector<EdgeId> canonical_wires(const Torus& t) {
  std::vector<EdgeId> wires;
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e)
    if (t.undirected_id(e) == e) wires.push_back(e);
  return wires;
}

EdgeSet wire_fault(const Torus& t, EdgeId wire) {
  EdgeSet faults(t);
  faults.insert(wire);
  faults.insert(t.reverse_edge(wire));
  return faults;
}

// The paper's Figure-1 / E1 case: the linear placement on T_3^2.  Under
// any single wire fault, UDR's s! = 2 edge-disjoint paths per pair and
// full minimal adaptivity keep the exchange complete, while ODR drops
// exactly the pairs whose unique canonical path crossed the dead wire.
TEST(Resilience, SingleFaultInvariantOnFigure1Exchange) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  UdrRouter udr;
  AdaptiveMinimalRouter adaptive;

  i64 total_odr_drops = 0;
  for (const EdgeId wire : canonical_wires(t)) {
    const FaultSchedule schedule = FaultSchedule::single_wire(t, wire);

    // UDR and ADAPTIVE: 100% delivery under every possible wire fault.
    for (const Router* router :
         {static_cast<const Router*>(&udr),
          static_cast<const Router*>(&adaptive)}) {
      const DegradationReport r =
          degradation_report(t, p, *router, schedule);
      EXPECT_EQ(r.delivered, r.injected)
          << router->name() << " wire " << wire;
      EXPECT_EQ(r.dropped, 0) << router->name() << " wire " << wire;
      EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
    }

    // ODR: the dropped pairs are exactly the statically unroutable ones.
    const DegradationReport r = degradation_report(t, p, odr, schedule);
    const i64 unroutable =
        count_unroutable_pairs(t, p, odr, wire_fault(t, wire));
    EXPECT_EQ(r.dropped, unroutable) << "wire " << wire;
    EXPECT_EQ(r.delivered, r.injected - unroutable) << "wire " << wire;
    total_odr_drops += r.dropped;
  }

  // Every pair's unique canonical path has 2 links, so summing drops over
  // all wires counts each pair once per path link: 6 pairs * 2 = 12 — the
  // same 12 unit-loaded links Figure 1 shows.
  EXPECT_EQ(total_odr_drops, 12);
}

TEST(Resilience, RateZeroReproducesTheBaseline) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const std::vector<DegradationReport> curve =
      resilience_sweep(t, p, udr, {0.0});
  ASSERT_EQ(curve.size(), 1u);
  const DegradationReport& r = curve[0];
  EXPECT_EQ(r.fault_rate, 0.0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.rerouted, 0);
  EXPECT_EQ(r.fail_events, 0);
  EXPECT_EQ(r.cycles, r.baseline_cycles);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  EXPECT_DOUBLE_EQ(r.completion_inflation, 1.0);
  EXPECT_DOUBLE_EQ(r.emax_inflation, 1.0);
  EXPECT_EQ(r.degraded_emax, r.baseline_emax);
}

TEST(Resilience, MessagesAreDroppedOrDeliveredNeverLost) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  ResilienceConfig config;
  config.repair_prob = 0.2;
  OdrRouter odr;
  UdrRouter udr;
  for (const Router* router :
       {static_cast<const Router*>(&odr), static_cast<const Router*>(&udr)}) {
    const std::vector<DegradationReport> curve =
        resilience_sweep(t, p, *router, {0.005, 0.02}, config);
    for (const DegradationReport& r : curve) {
      // Every message is accounted for: delivered or dropped, never lost.
      // (Makespan may go either way — drops can relieve congestion — so
      // only the conservation law is pinned.)
      EXPECT_EQ(r.delivered + r.dropped, r.injected) << r.router_name;
      EXPECT_GT(r.baseline_cycles, 0) << r.router_name;
    }
  }
}

TEST(Resilience, JsonlIsByteIdenticalAcrossRuns) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  ResilienceConfig config;
  config.repair_prob = 0.1;
  const std::vector<double> rates{0.0, 0.002, 0.01};
  const std::string a =
      resilience_jsonl(resilience_sweep(t, p, udr, rates, config));
  const std::string b =
      resilience_jsonl(resilience_sweep(t, p, udr, rates, config));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // Stable schema: every line carries the full key set.
  for (const char* key :
       {"\"router\"", "\"fault_rate\"", "\"delivered\"", "\"dropped\"",
        "\"delivered_fraction\"", "\"completion_inflation\"",
        "\"degraded_emax\""})
    EXPECT_NE(a.find(key), std::string::npos) << key;
}

TEST(Resilience, WireCriticalityIsThreadCountInvariant) {
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const std::vector<WireCriticality> serial = wire_criticality(t, p, odr);
  for (i32 threads : {2, 4, 7}) {
    const std::vector<WireCriticality> parallel =
        wire_criticality(t, p, odr, {}, threads);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].wire, parallel[i].wire);
      EXPECT_EQ(serial[i].dropped, parallel[i].dropped);
      EXPECT_EQ(serial[i].rerouted, parallel[i].rerouted);
      EXPECT_DOUBLE_EQ(serial[i].delivered_fraction,
                       parallel[i].delivered_fraction);
    }
  }
}

TEST(Resilience, WireCriticalityMatchesStaticUnroutability) {
  // Per wire, ODR's dynamic drop count equals the static
  // count_unroutable_pairs — the identity the module's header promises.
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const std::vector<WireCriticality> ranking =
      wire_criticality(t, p, odr, {}, 2);
  EXPECT_EQ(static_cast<i64>(ranking.size()), t.num_undirected_edges());
  const i64 pairs = p.size() * (p.size() - 1);
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const WireCriticality& w = ranking[i];
    EXPECT_EQ(w.dropped,
              count_unroutable_pairs(t, p, odr, wire_fault(t, w.wire)))
        << "wire " << w.wire;
    EXPECT_DOUBLE_EQ(
        w.delivered_fraction,
        1.0 - static_cast<double>(w.dropped) / static_cast<double>(pairs));
    // Ranked most critical first.
    if (i > 0) {
      EXPECT_LE(ranking[i - 1].delivered_fraction, w.delivered_fraction);
    }
  }
}

TEST(Resilience, UdrSurvivesWhereOdrDegrades) {
  // The quantitative form of Section 7's argument: under the same
  // single-wire faults, UDR's delivered fraction dominates ODR's, and at
  // least one wire actually hurts ODR.
  Torus t(2, 3);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  UdrRouter udr;
  const std::vector<WireCriticality> odr_rank = wire_criticality(t, p, odr);
  const std::vector<WireCriticality> udr_rank = wire_criticality(t, p, udr);
  for (const WireCriticality& w : udr_rank)
    EXPECT_DOUBLE_EQ(w.delivered_fraction, 1.0) << "wire " << w.wire;
  EXPECT_LT(odr_rank.front().delivered_fraction, 1.0);
}

TEST(Resilience, Validation) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  const Placement single(t, {0}, "one");
  UdrRouter udr;
  const FaultSchedule empty;
  EXPECT_THROW(degradation_report(t, single, udr, empty), Error);
  EXPECT_THROW(resilience_sweep(t, p, udr, {}), Error);
  EXPECT_THROW(resilience_sweep(t, p, udr, {1.5}), Error);
  EXPECT_THROW(resilience_sweep(t, p, udr, {-0.1}), Error);
  EXPECT_THROW(wire_criticality(t, p, udr, {}, 0), Error);
  EXPECT_THROW(export_resilience_jsonl({}, "/nonexistent-dir/out.jsonl"),
               Error);
}

}  // namespace
}  // namespace tp
