// Error-path coverage: every public API must reject malformed input with
// tp::Error rather than crash or mis-compute.  Grouped by module.

#include <gtest/gtest.h>

#include "src/analysis/grid_render.h"
#include "src/core/torusplace.h"
#include "src/simulate/wormhole.h"

namespace tp {
namespace {

TEST(Robustness, TorusApi) {
  Torus t(2, 4);
  EXPECT_THROW(t.radix(-1), Error);
  EXPECT_THROW(t.radix(2), Error);
  EXPECT_THROW(t.coord_of(-1, 0), Error);
  EXPECT_THROW(t.coord_of(0, 9), Error);
  EXPECT_THROW(t.neighbor(99, 0, Dir::Pos), Error);
  EXPECT_THROW(t.edge_id(0, 5, Dir::Pos), Error);
  EXPECT_THROW(t.link(-1), Error);
  EXPECT_THROW(t.link(t.num_directed_edges()), Error);
  EXPECT_THROW(t.lee_distance(0, 999), Error);
  EXPECT_THROW(t.cyclic_dist(7, 0, 0), Error);
  EXPECT_THROW(t.principal_subtorus(0, 4), Error);
  EXPECT_THROW(t.principal_subtorus(2, 0), Error);
}

TEST(Robustness, GraphApi) {
  Torus t(2, 3);
  EXPECT_THROW(bfs_distances(t, -1), Error);
  EdgeSet s(t);
  EXPECT_THROW(s.insert(-1), std::exception);          // bitmap at() throws
  EXPECT_THROW(s.contains(t.num_directed_edges()), std::exception);
}

TEST(Robustness, LoadMapApi) {
  Torus t(2, 3);
  LoadMap m(t);
  EXPECT_THROW(m.histogram(0), Error);
  EXPECT_THROW(m.max_load_in_dim(t, 5), Error);
  EXPECT_THROW(m.add(-1, 1.0), std::exception);
}

TEST(Robustness, RouterApi) {
  Torus t(2, 4);
  OdrRouter odr;
  UdrRouter udr;
  EXPECT_THROW(odr.canonical_path(t, -1, 0), Error);
  EXPECT_THROW(odr.paths(t, 0, 99), Error);
  EXPECT_THROW(udr.paths(t, -2, 0), Error);
  EXPECT_THROW(udr.num_paths(t, 0, 16), Error);
  AdaptiveMinimalRouter adaptive;
  EXPECT_THROW(adaptive.paths(t, 0, -1), Error);
}

TEST(Robustness, LoadAnalyzersRejectForeignPlacements) {
  Torus t(2, 4);
  Torus other(2, 5);
  const Placement p = linear_placement(other);
  EXPECT_THROW(odr_loads(t, p), Error);
  EXPECT_THROW(udr_loads(t, p), Error);
  EXPECT_THROW(adaptive_loads(t, p), Error);
  EXPECT_THROW(expected_total_load(t, p), Error);
  EXPECT_THROW(reference_loads(t, p, OdrRouter()), Error);
}

TEST(Robustness, BisectionApi) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  EXPECT_THROW(dimension_cut(t, p, 9), Error);
  Torus big(2, 6);
  EXPECT_THROW(exact_bisection(big, full_population(big)), Error);  // 36 > 24
  EXPECT_THROW(Cut(t, std::vector<bool>(3, false)), Error);
}

TEST(Robustness, BoundsApi) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  EXPECT_THROW(separator_bound(t, p, {NodeId{-1}}), Error);
  Torus mixed(Radices{3, 4});
  EXPECT_THROW(placement_size_ceiling(mixed, 1.0), Error);
}

TEST(Robustness, SimulatorApi) {
  Torus t(2, 4);
  NetworkSim sim(t);
  SimMessage bad;
  bad.path.source = 0;
  bad.path.target = 1;
  bad.path.edges = {t.edge_id(5, 0, Dir::Pos)};  // does not start at source
  EXPECT_THROW(sim.run({bad}), Error);
  SimMessage negative;
  negative.inject_cycle = -5;
  EXPECT_THROW(sim.run({negative}), Error);
}

TEST(Robustness, WormholeApi) {
  Torus t(1, 4);
  WormholeConfig config;
  config.stall_threshold = 0;
  EXPECT_THROW(WormholeSim(t, config), Error);
}

TEST(Robustness, PlannerAndVerifier) {
  Torus t(2, 4);
  EXPECT_THROW(plan_placement(t, -1), Error);
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  EXPECT_THROW(verify_linear_load(2, {}, family, RouterKind::Odr), Error);
}

TEST(Robustness, GridRenderRejectsForeignPlacement) {
  Torus t(2, 4);
  Torus other(2, 5);
  EXPECT_THROW(render_placement(t, linear_placement(other)), Error);
}

TEST(Robustness, TrafficGenerators) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  EXPECT_THROW(h_relation_traffic(t, p, odr, -1, 1), Error);
  const Placement single(t, {0}, "one");
  EXPECT_THROW(h_relation_traffic(t, single, odr, 1, 1), Error);
  EXPECT_THROW(sample_wire_faults(t, t.num_undirected_edges() + 1, 1),
               Error);
}

TEST(Robustness, SmallVecAndNdRange) {
  EXPECT_THROW((SmallVec<i32>{1, 2, 3, 4, 5, 6, 7, 8, 9}), Error);
  NdRange r(Radices{2});
  r.next();
  r.next();
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.next(), Error);
}

}  // namespace
}  // namespace tp
