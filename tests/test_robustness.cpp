// Error-path coverage: every public API must reject malformed input with
// tp::Error rather than crash or mis-compute.  Grouped by module.

#include <gtest/gtest.h>

#include "src/analysis/grid_render.h"
#include "src/core/torusplace.h"
#include "src/simulate/wormhole.h"

namespace tp {
namespace {

TEST(Robustness, TorusApi) {
  Torus t(2, 4);
  EXPECT_THROW(t.radix(-1), Error);
  EXPECT_THROW(t.radix(2), Error);
  EXPECT_THROW(t.coord_of(-1, 0), Error);
  EXPECT_THROW(t.coord_of(0, 9), Error);
  EXPECT_THROW(t.neighbor(99, 0, Dir::Pos), Error);
  EXPECT_THROW(t.edge_id(0, 5, Dir::Pos), Error);
  EXPECT_THROW(t.link(-1), Error);
  EXPECT_THROW(t.link(t.num_directed_edges()), Error);
  EXPECT_THROW(t.lee_distance(0, 999), Error);
  EXPECT_THROW(t.cyclic_dist(7, 0, 0), Error);
  EXPECT_THROW(t.principal_subtorus(0, 4), Error);
  EXPECT_THROW(t.principal_subtorus(2, 0), Error);
}

TEST(Robustness, GraphApi) {
  Torus t(2, 3);
  EXPECT_THROW(bfs_distances(t, -1), Error);
  EdgeSet s(t);
  EXPECT_THROW(s.insert(-1), std::exception);          // bitmap at() throws
  EXPECT_THROW(s.contains(t.num_directed_edges()), std::exception);
}

TEST(Robustness, LoadMapApi) {
  Torus t(2, 3);
  LoadMap m(t);
  EXPECT_THROW(m.histogram(0), Error);
  EXPECT_THROW(m.max_load_in_dim(t, 5), Error);
  EXPECT_THROW(m.add(-1, 1.0), std::exception);
}

TEST(Robustness, RouterApi) {
  Torus t(2, 4);
  OdrRouter odr;
  UdrRouter udr;
  EXPECT_THROW(odr.canonical_path(t, -1, 0), Error);
  EXPECT_THROW(odr.paths(t, 0, 99), Error);
  EXPECT_THROW(udr.paths(t, -2, 0), Error);
  EXPECT_THROW(udr.num_paths(t, 0, 16), Error);
  AdaptiveMinimalRouter adaptive;
  EXPECT_THROW(adaptive.paths(t, 0, -1), Error);
}

TEST(Robustness, LoadAnalyzersRejectForeignPlacements) {
  Torus t(2, 4);
  Torus other(2, 5);
  const Placement p = linear_placement(other);
  EXPECT_THROW(odr_loads(t, p), Error);
  EXPECT_THROW(udr_loads(t, p), Error);
  EXPECT_THROW(adaptive_loads(t, p), Error);
  EXPECT_THROW(expected_total_load(t, p), Error);
  EXPECT_THROW(reference_loads(t, p, OdrRouter()), Error);
}

TEST(Robustness, BisectionApi) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  EXPECT_THROW(dimension_cut(t, p, 9), Error);
  Torus big(2, 6);
  EXPECT_THROW(exact_bisection(big, full_population(big)), Error);  // 36 > 24
  EXPECT_THROW(Cut(t, std::vector<bool>(3, false)), Error);
}

TEST(Robustness, BoundsApi) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  EXPECT_THROW(separator_bound(t, p, {NodeId{-1}}), Error);
  Torus mixed(Radices{3, 4});
  EXPECT_THROW(placement_size_ceiling(mixed, 1.0), Error);
}

TEST(Robustness, SimulatorApi) {
  Torus t(2, 4);
  NetworkSim sim(t);
  SimMessage bad;
  bad.path.source = 0;
  bad.path.target = 1;
  bad.path.edges = {t.edge_id(5, 0, Dir::Pos)};  // does not start at source
  EXPECT_THROW(sim.run({bad}), Error);
  SimMessage negative;
  negative.inject_cycle = -5;
  EXPECT_THROW(sim.run({negative}), Error);
}

TEST(Robustness, WormholeApi) {
  Torus t(1, 4);
  WormholeConfig config;
  config.stall_threshold = 0;
  EXPECT_THROW(WormholeSim(t, config), Error);
}

TEST(Robustness, PlannerAndVerifier) {
  Torus t(2, 4);
  EXPECT_THROW(plan_placement(t, -1), Error);
  const auto family = [](const Torus& torus) {
    return linear_placement(torus);
  };
  EXPECT_THROW(verify_linear_load(2, {}, family, RouterKind::Odr), Error);
}

TEST(Robustness, GridRenderRejectsForeignPlacement) {
  Torus t(2, 4);
  Torus other(2, 5);
  EXPECT_THROW(render_placement(t, linear_placement(other)), Error);
}

TEST(Robustness, TrafficGenerators) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  EXPECT_THROW(h_relation_traffic(t, p, odr, -1, 1), Error);
  const Placement single(t, {0}, "one");
  EXPECT_THROW(h_relation_traffic(t, single, odr, 1, 1), Error);
  EXPECT_THROW(sample_wire_faults(t, t.num_undirected_edges() + 1, 1),
               Error);
}

TEST(Robustness, SampleWireFaultsReportsTheActualCounts) {
  Torus t(2, 4);  // 32 wires
  try {
    sample_wire_faults(t, 1000, 1);
    FAIL() << "expected tp::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1000"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("32 wires"), std::string::npos);
  }
  try {
    sample_wire_faults(t, -3, 1);
    FAIL() << "expected tp::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(Robustness, FaultRouterDetectsFullyFaultedPairs) {
  // Kill every canonical ODR path of one pair: num_paths() reports 0,
  // paths() is empty, and sample_path() refuses with tp::Error.
  Torus t(2, 3);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{1, 1});
  EdgeSet faults(t);
  for (const Path& path : odr.paths(t, src, dst))
    for (EdgeId e : path.edges) {
      faults.insert(e);
      faults.insert(t.reverse_edge(e));
    }
  const FaultTolerantRouter ft(odr, faults);
  EXPECT_EQ(ft.num_paths(t, src, dst), 0);
  EXPECT_TRUE(ft.paths(t, src, dst).empty());
  Xoshiro256SS rng(1);
  EXPECT_THROW(ft.sample_path(t, src, dst, rng), Error);
  // Other pairs are unaffected unless their paths cross the fault set.
  EXPECT_GT(ft.num_paths(t, dst, src) + ft.num_paths(t, src, t.node_id(Coord{0, 1})), 0);
}

TEST(Robustness, FaultRouterDecoratorsStack) {
  // Two stacked decorators filter against the union of their fault sets.
  Torus t(2, 4);
  UdrRouter udr;
  const NodeId src = 0, dst = t.node_id(Coord{1, 1});
  const std::vector<Path> all = udr.paths(t, src, dst);
  ASSERT_EQ(all.size(), 2u);

  EdgeSet kill_first(t), kill_second(t);
  kill_first.insert(all[0].edges[0]);
  kill_second.insert(all[1].edges[0]);
  const FaultTolerantRouter inner(udr, kill_first);
  const FaultTolerantRouter outer(inner, kill_second);
  EXPECT_EQ(outer.name(), udr.name() + "+faults+faults");
  EXPECT_EQ(inner.num_paths(t, src, dst), 1);
  EXPECT_EQ(outer.num_paths(t, src, dst), 0);

  EdgeSet union_set(t);
  union_set.insert(all[0].edges[0]);
  union_set.insert(all[1].edges[0]);
  const FaultTolerantRouter flat(udr, union_set);
  EXPECT_EQ(outer.num_paths(t, src, dst), flat.num_paths(t, src, dst));
}

TEST(Robustness, FaultRouterWithEmptyFaultSetMatchesInnerExactly) {
  Torus t(2, 4);
  UdrRouter udr;
  const EdgeSet empty(t);
  const FaultTolerantRouter ft(udr, empty);
  for (NodeId dst : {1, 5, 10, 15}) {
    const std::vector<Path> a = udr.paths(t, 0, dst);
    const std::vector<Path> b = ft.paths(t, 0, dst);
    ASSERT_EQ(a.size(), b.size()) << "dst " << dst;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].edges, b[i].edges);
    EXPECT_EQ(udr.num_paths(t, 0, dst), ft.num_paths(t, 0, dst));
    // Same RNG stream, same draw: sampling is bit-for-bit identical.
    Xoshiro256SS r1(42), r2(42);
    EXPECT_EQ(udr.sample_path(t, 0, dst, r1).edges,
              ft.sample_path(t, 0, dst, r2).edges);
  }
}

TEST(Robustness, UnroutablePairCountsAreThreadCountInvariant) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  OdrRouter odr;
  const EdgeSet faults = sample_wire_faults(t, 6, 42);
  for (const Router* router :
       {static_cast<const Router*>(&odr), static_cast<const Router*>(&udr)}) {
    const i64 serial = count_unroutable_pairs(t, p, *router, faults);
    const double serial_frac =
        routable_pair_fraction(t, p, *router, faults);
    for (i32 threads : {2, 3, 8, 64}) {
      EXPECT_EQ(count_unroutable_pairs(t, p, *router, faults, threads),
                serial)
          << router->name() << " threads " << threads;
      // Exact equality: same additions in the same order.
      EXPECT_EQ(routable_pair_fraction(t, p, *router, faults, threads),
                serial_frac)
          << router->name() << " threads " << threads;
    }
  }
  EXPECT_THROW(count_unroutable_pairs(t, p, odr, faults, 0), Error);
}

TEST(Robustness, SmallVecAndNdRange) {
  EXPECT_THROW((SmallVec<i32>{1, 2, 3, 4, 5, 6, 7, 8, 9}), Error);
  NdRange r(Radices{2});
  r.next();
  r.next();
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.next(), Error);
}

}  // namespace
}  // namespace tp
