// Tests for the fully adaptive minimal router: enumeration matches the
// multinomial count, every path is minimal and distinct, sampling is
// uniform, and UDR/ODR path sets are subsets of the adaptive set.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/torus/torus.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Adaptive, EnumerationMatchesCount) {
  Torus t(3, 5);
  AdaptiveMinimalRouter router;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  for (NodeId q = 0; q < t.num_nodes(); q += 13) {
    const auto paths = router.paths(t, p, q);
    EXPECT_EQ(static_cast<i64>(paths.size()), router.num_paths(t, p, q))
        << t.node_str(q);
  }
}

TEST(Adaptive, AllPathsMinimalAndDistinct) {
  Torus t(2, 6);
  AdaptiveMinimalRouter router;
  const NodeId p = t.node_id(Coord{0, 0});
  const NodeId q = t.node_id(Coord{2, 3});  // dim 1 is a tie
  const auto paths = router.paths(t, p, q);
  EXPECT_EQ(static_cast<i64>(paths.size()), t.num_minimal_paths(p, q));
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& path : paths) {
    path.verify_minimal(t);
    distinct.insert(path.edges);
  }
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(Adaptive, CountMatchesMultinomialByHand) {
  Torus t(2, 7);
  AdaptiveMinimalRouter router;
  const NodeId p = t.node_id(Coord{0, 0});
  // Distances (3, 2): C(5,3) = 10 paths.
  EXPECT_EQ(router.num_paths(t, p, t.node_id(Coord{3, 2})), 10);
  // Distances (3, 3) using wrap: C(6,3) = 20.
  EXPECT_EQ(router.num_paths(t, p, t.node_id(Coord{3, 4})), 20);
}

TEST(Adaptive, UdrPathsAreASubset) {
  Torus t(3, 5);
  AdaptiveMinimalRouter adaptive;
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{1, 1, 2});
  std::set<std::vector<EdgeId>> all;
  for (const Path& path : adaptive.paths(t, p, q)) all.insert(path.edges);
  for (const Path& path : udr.paths(t, p, q))
    EXPECT_TRUE(all.count(path.edges));
  // And ODR's single path too.
  EXPECT_TRUE(all.count(OdrRouter().canonical_path(t, p, q).edges));
}

TEST(Adaptive, GuardsAgainstBlowup) {
  Torus t(8, 4);
  AdaptiveMinimalRouter router;
  router.set_max_paths(100);
  const NodeId p = 0;
  // The farthest corner has an astronomical path count.
  NodeId q = p;
  for (i32 d = 0; d < t.dims(); ++d) q = t.neighbor(q, d, Dir::Pos);
  for (i32 d = 0; d < t.dims(); ++d) q = t.neighbor(q, d, Dir::Pos);
  EXPECT_THROW(router.paths(t, p, q), Error);
}

TEST(Adaptive, SampleIsUniform) {
  Torus t(2, 7);
  AdaptiveMinimalRouter router;
  const NodeId p = t.node_id(Coord{0, 0});
  const NodeId q = t.node_id(Coord{2, 1});  // 3 paths
  Xoshiro256SS rng(5);
  std::map<std::vector<EdgeId>, int> counts;
  const int draws = 3000;
  for (int i = 0; i < draws; ++i)
    ++counts[router.sample_path(t, p, q, rng).edges];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [edges, c] : counts) {
    EXPECT_GT(c, draws / 3 - 150);
    EXPECT_LT(c, draws / 3 + 150);
  }
}

TEST(Adaptive, SampleCoversTieDirections) {
  Torus t(1, 8);
  AdaptiveMinimalRouter router;
  Xoshiro256SS rng(17);
  std::set<NodeId> first_hops;
  for (int i = 0; i < 100; ++i)
    first_hops.insert(router.sample_path(t, 0, 4, rng).nodes(t)[1]);
  EXPECT_EQ(first_hops.size(), 2u);
}

TEST(Adaptive, SamplePathsAreMinimal) {
  Torus t(3, 6);
  AdaptiveMinimalRouter router;
  Xoshiro256SS rng(8);
  for (NodeId q = 1; q < t.num_nodes(); q += 31)
    router.sample_path(t, 0, q, rng).verify_minimal(t);
}

TEST(Adaptive, SelfPair) {
  Torus t(2, 4);
  AdaptiveMinimalRouter router;
  EXPECT_EQ(router.num_paths(t, 3, 3), 1);
  const auto paths = router.paths(t, 3, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 0);
}

}  // namespace
}  // namespace tp
