// Tests for Ordered Dimensional Routing (Section 6): canonical path shape,
// minimality, tie handling, and the dimension-order invariant.

#include <gtest/gtest.h>

#include <set>

#include "src/routing/odr.h"
#include "src/torus/torus.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Odr, CanonicalPathIsMinimal) {
  Torus t(3, 5);
  OdrRouter odr;
  for (NodeId p : {NodeId{0}, NodeId{31}, NodeId{124}})
    for (NodeId q = 0; q < t.num_nodes(); q += 7) {
      const Path path = odr.canonical_path(t, p, q);
      path.verify_minimal(t);
      EXPECT_EQ(path.source, p);
      EXPECT_EQ(path.target, q);
    }
}

TEST(Odr, ExactlyOnePathWithCanonicalTieBreak) {
  Torus t(2, 4);  // even k: ties exist
  OdrRouter odr;
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (NodeId q = 0; q < t.num_nodes(); ++q) {
      EXPECT_EQ(odr.num_paths(t, p, q), 1);
      EXPECT_EQ(odr.paths(t, p, q).size(), 1u);
    }
}

TEST(Odr, PathsMatchCanonicalPath) {
  Torus t(2, 5);
  OdrRouter odr;
  for (NodeId p = 0; p < t.num_nodes(); ++p)
    for (NodeId q = 0; q < t.num_nodes(); ++q)
      EXPECT_EQ(odr.paths(t, p, q)[0].edges,
                odr.canonical_path(t, p, q).edges);
}

TEST(Odr, CorrectsDimensionsInOrder) {
  // The node sequence must fix dimension 0 first, then dimension 1, ...
  Torus t(3, 5);
  OdrRouter odr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{2, 3, 1});
  const Path path = odr.canonical_path(t, p, q);
  const auto nodes = path.nodes(t);
  // Dimension of each hop must be non-decreasing.
  i32 last_dim = 0;
  for (EdgeId e : path.edges) {
    const Link l = t.link(e);
    EXPECT_GE(l.dim, last_dim);
    last_dim = l.dim;
  }
  EXPECT_EQ(nodes.back(), q);
}

TEST(Odr, TieGoesPositive) {
  // k = 6, distance exactly 3: the canonical rule corrects in +.
  Torus t(1, 6);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 0, 3);
  ASSERT_EQ(path.length(), 3);
  const auto nodes = path.nodes(t);
  EXPECT_EQ(nodes[1], 1);
  EXPECT_EQ(nodes[2], 2);
}

TEST(Odr, ShorterDirectionWins) {
  Torus t(1, 6);
  OdrRouter odr;
  // 0 -> 4: distance 2 backwards.
  const Path path = odr.canonical_path(t, 0, 4);
  ASSERT_EQ(path.length(), 2);
  EXPECT_EQ(path.nodes(t)[1], 5);
}

TEST(Odr, BothDirectionsTieBreakDoublesPaths) {
  Torus t(2, 4);
  OdrRouter both(TieBreak::BothDirections);
  const NodeId p = t.node_id(Coord{0, 0});
  // One tie dimension (distance 2), one non-tie: 2 paths.
  EXPECT_EQ(both.num_paths(t, p, t.node_id(Coord{2, 1})), 2);
  // Two tie dimensions: 4 paths.
  EXPECT_EQ(both.num_paths(t, p, t.node_id(Coord{2, 2})), 4);
  // No tie: 1 path.
  EXPECT_EQ(both.num_paths(t, p, t.node_id(Coord{1, 1})), 1);
  // paths() agrees with num_paths() and all are minimal + distinct.
  const auto paths = both.paths(t, p, t.node_id(Coord{2, 2}));
  EXPECT_EQ(paths.size(), 4u);
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& path : paths) {
    path.verify_minimal(t);
    distinct.insert(path.edges);
  }
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(Odr, SampleIsDeterministicWithOnePath) {
  Torus t(2, 5);
  OdrRouter odr;
  Xoshiro256SS rng(3);
  const Path sampled = odr.sample_path(t, 2, 17, rng);
  EXPECT_EQ(sampled.edges, odr.canonical_path(t, 2, 17).edges);
}

TEST(Odr, SampleCoversBothTieDirections) {
  Torus t(1, 6);
  OdrRouter both(TieBreak::BothDirections);
  Xoshiro256SS rng(11);
  std::set<NodeId> first_hops;
  for (int i = 0; i < 64; ++i)
    first_hops.insert(both.sample_path(t, 0, 3, rng).nodes(t)[1]);
  EXPECT_EQ(first_hops.size(), 2u);  // saw + and - starts
}

TEST(Odr, SelfPathIsEmpty) {
  Torus t(2, 4);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 5, 5);
  EXPECT_EQ(path.length(), 0);
  path.verify_minimal(t);
}

TEST(Odr, Name) {
  EXPECT_EQ(OdrRouter().name(), "ODR");
  EXPECT_EQ(OdrRouter(TieBreak::BothDirections).name(), "ODR(both)");
}

TEST(Path, VerifyCatchesBrokenPaths) {
  Torus t(2, 4);
  OdrRouter odr;
  Path path = odr.canonical_path(t, 0, 5);
  ASSERT_GE(path.length(), 2);
  std::swap(path.edges[0], path.edges[1]);
  EXPECT_THROW(path.verify_connected(t), Error);
}

TEST(Path, VerifyMinimalCatchesDetours) {
  Torus t(1, 5);
  // 0 -> 1 the long way round (4 hops) is connected but not minimal.
  Path path;
  path.source = 0;
  path.target = 1;
  NodeId cur = 0;
  for (int i = 0; i < 4; ++i) {
    path.edges.push_back(t.edge_id(cur, 0, Dir::Neg));
    cur = t.neighbor(cur, 0, Dir::Neg);
  }
  path.verify_connected(t);
  EXPECT_THROW(path.verify_minimal(t), Error);
}

TEST(Path, UsesFindsEdges) {
  Torus t(2, 4);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 0, 5);
  for (EdgeId e : path.edges) EXPECT_TRUE(path.uses(e));
  EXPECT_FALSE(path.uses(t.num_directed_edges() - 1));
}

}  // namespace
}  // namespace tp
