// Tests for Unordered Dimensional Routing (Section 7): the s! path count,
// path structure (one full dimension correction at a time), minimality,
// and fault-tolerance-relevant path diversity.

#include <gtest/gtest.h>

#include <set>

#include "src/routing/udr.h"
#include "src/torus/torus.h"
#include "src/util/error.h"

namespace tp {
namespace {

i32 differing(const Torus& t, NodeId p, NodeId q) {
  return static_cast<i32>(UdrRouter::differing_dims(t, p, q).size());
}

TEST(Udr, PathCountIsSFactorial) {
  Torus t(3, 5);
  UdrRouter udr;
  for (NodeId p : {NodeId{0}, NodeId{62}})
    for (NodeId q = 0; q < t.num_nodes(); q += 11) {
      const i32 s = differing(t, p, q);
      EXPECT_EQ(udr.num_paths(t, p, q), factorial(s))
          << t.node_str(p) << " -> " << t.node_str(q);
      EXPECT_EQ(static_cast<i64>(udr.paths(t, p, q).size()), factorial(s));
    }
}

TEST(Udr, AllPathsAreMinimalAndDistinct) {
  Torus t(3, 5);
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{1, 2, 3});
  const auto paths = udr.paths(t, p, q);
  ASSERT_EQ(paths.size(), 6u);  // 3! = 6
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& path : paths) {
    path.verify_minimal(t);
    distinct.insert(path.edges);
  }
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(Udr, EachPathCorrectsOneDimensionAtATime) {
  Torus t(3, 5);
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{2, 1, 2});
  for (const Path& path : udr.paths(t, p, q)) {
    // The dimension sequence along the path must have no dimension
    // reappearing after a different one was used.
    std::set<i32> finished;
    i32 current = -1;
    for (EdgeId e : path.edges) {
      const Link l = t.link(e);
      if (l.dim != current) {
        EXPECT_FALSE(finished.count(l.dim)) << "dimension revisited";
        if (current >= 0) finished.insert(current);
        current = l.dim;
      }
    }
  }
}

TEST(Udr, IncludesTheOdrPath) {
  // ODR's canonical path (dimension order 0, 1, ..., d-1) is one of UDR's.
  Torus t(3, 5);
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{4, 1, 0});
  const NodeId q = t.node_id(Coord{1, 3, 2});
  SmallVec<i32> order{0, 1, 2};
  SmallVec<i32> dirs;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Way w = t.shortest_way(order[i], t.coord_of(p, order[i]),
                                 t.coord_of(q, order[i]));
    dirs.push_back(w == Way::Neg ? -1 : +1);
  }
  const Path odr_like = udr.path_for_order(t, p, q, order, dirs);
  bool found = false;
  for (const Path& path : udr.paths(t, p, q))
    if (path.edges == odr_like.edges) found = true;
  EXPECT_TRUE(found);
}

TEST(Udr, PathForOrderValidatesArguments) {
  Torus t(2, 5);
  UdrRouter udr;
  const NodeId p = 0, q = t.node_id(Coord{1, 2});
  EXPECT_THROW(udr.path_for_order(t, p, q, SmallVec<i32>{0},
                                  SmallVec<i32>{+1, +1}),
               Error);
  // Wrong direction does not land on the target coordinate - the segment
  // walks the long way round, so the path is connected but not q-ending
  // only when distances mismatch; here the walk still ends at q but is
  // longer than minimal.  path_for_order only guarantees arrival.
  const Path path = udr.path_for_order(t, p, q, SmallVec<i32>{0, 1},
                                       SmallVec<i32>{-1, -1});
  path.verify_connected(t);
  EXPECT_GT(path.length(), t.lee_distance(p, q));
}

TEST(Udr, TieBothDirectionsMultipliesCount) {
  Torus t(2, 4);
  const NodeId p = t.node_id(Coord{0, 0});
  const NodeId q = t.node_id(Coord{2, 2});  // two tie dimensions
  EXPECT_EQ(UdrRouter().num_paths(t, p, q), 2);               // 2!
  UdrRouter both(TieBreak::BothDirections);
  EXPECT_EQ(both.num_paths(t, p, q), 8);                      // 2! * 2 * 2
  const auto paths = both.paths(t, p, q);
  EXPECT_EQ(paths.size(), 8u);
  std::set<std::vector<EdgeId>> distinct;
  for (const Path& path : paths) {
    path.verify_minimal(t);
    distinct.insert(path.edges);
  }
  EXPECT_EQ(distinct.size(), 8u);
}

TEST(Udr, DifferingDims) {
  Torus t(3, 4);
  const NodeId p = t.node_id(Coord{1, 2, 3});
  EXPECT_EQ(UdrRouter::differing_dims(t, p, p).size(), 0u);
  const NodeId q = t.node_id(Coord{1, 0, 2});
  const auto diff = UdrRouter::differing_dims(t, p, q);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0], 1);
  EXPECT_EQ(diff[1], 2);
}

TEST(Udr, SamplePathIsAlwaysAValidUdrPath) {
  Torus t(3, 5);
  UdrRouter udr;
  Xoshiro256SS rng(21);
  const NodeId p = t.node_id(Coord{0, 1, 2});
  const NodeId q = t.node_id(Coord{3, 3, 0});
  std::set<std::vector<EdgeId>> allowed;
  for (const Path& path : udr.paths(t, p, q)) allowed.insert(path.edges);
  std::set<std::vector<EdgeId>> sampled;
  for (int i = 0; i < 200; ++i) {
    const Path path = udr.sample_path(t, p, q, rng);
    EXPECT_TRUE(allowed.count(path.edges));
    sampled.insert(path.edges);
  }
  // With 200 draws over 6 paths, seeing all of them is overwhelming.
  EXPECT_EQ(sampled.size(), allowed.size());
}

TEST(Udr, PairDifferingInOneDimHasOnePath) {
  Torus t(3, 5);
  UdrRouter udr;
  const NodeId p = t.node_id(Coord{0, 0, 0});
  const NodeId q = t.node_id(Coord{0, 2, 0});
  EXPECT_EQ(udr.num_paths(t, p, q), 1);
  udr.paths(t, p, q)[0].verify_minimal(t);
}

TEST(Udr, Name) {
  EXPECT_EQ(UdrRouter().name(), "UDR");
  EXPECT_EQ(UdrRouter(TieBreak::BothDirections).name(), "UDR(both)");
}

}  // namespace
}  // namespace tp
