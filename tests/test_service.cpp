// Tests for the query service: key normalization, cache LRU semantics,
// engine coalescing/deadlines/drain, and the JSONL front-end.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/torusplace.h"
#include "src/obs/obs.h"
#include "src/service/service.h"

namespace tp::service {
namespace {

QueryKey key_dk(i32 d, i32 k, i32 t = 1, RouterKind r = RouterKind::Odr,
                QueryOp op = QueryOp::Plan) {
  Radices radices;
  for (i32 i = 0; i < d; ++i) radices.push_back(k);
  return make_query_key(radices, t, r, op);
}

std::shared_ptr<const QueryResult> dummy_result(const QueryKey& key) {
  auto r = std::make_shared<QueryResult>();
  r->key = key;
  r->placement_name = "dummy";
  return r;
}

// ---------------------------------------------------------------- QueryKey

TEST(QueryKey, NormalizesRadixOrder) {
  Radices a{6, 4, 8};
  Radices b{8, 6, 4};
  const QueryKey ka = make_query_key(a, 1, RouterKind::Odr, QueryOp::Plan);
  const QueryKey kb = make_query_key(b, 1, RouterKind::Odr, QueryOp::Plan);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.hash(), kb.hash());
  EXPECT_EQ(ka.radices[0], 4);
  EXPECT_EQ(ka.radices[2], 8);
}

TEST(QueryKey, DistinguishesEveryField) {
  const QueryKey base = key_dk(3, 8);
  EXPECT_FALSE(base == key_dk(2, 8));
  EXPECT_FALSE(base == key_dk(3, 6));
  EXPECT_FALSE(base == key_dk(3, 8, 2));
  EXPECT_FALSE(base == key_dk(3, 8, 1, RouterKind::Udr));
  EXPECT_FALSE(base == key_dk(3, 8, 1, RouterKind::Odr, QueryOp::Load));
}

TEST(QueryKey, HashIsStableAcrossProcessRuns) {
  // FNV-1a over the normalized fields: a fixed key must hash to a fixed
  // value forever (the cache shard layout depends on it).
  EXPECT_EQ(key_dk(3, 8).hash(), key_dk(3, 8).hash());
  const QueryKey k1 = key_dk(3, 8);
  const QueryKey k2 = key_dk(3, 8, 1, RouterKind::Odr, QueryOp::Load);
  EXPECT_NE(k1.hash(), k2.hash());
}

TEST(QueryKey, OpRoundTrip) {
  EXPECT_EQ(key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Plan).op(),
            QueryOp::Plan);
  EXPECT_EQ(key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Load).op(),
            QueryOp::Load);
  EXPECT_EQ(key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Bounds).op(),
            QueryOp::Bounds);
  EXPECT_EQ(key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Analyze).op(),
            QueryOp::Analyze);
  EXPECT_EQ(key_dk(3, 8, 2, RouterKind::Udr, QueryOp::Load).str(),
            "load d3 k8 t2 udr");
}

TEST(ComputeQuery, MatchesPlannerDirectly) {
  const Torus torus(3, 8);
  const PlacementPlan plan = plan_placement(torus, 1, RouterKind::Odr);
  const QueryResult r =
      compute_query(key_dk(3, 8, 1, RouterKind::Odr, QueryOp::Load));
  EXPECT_EQ(r.placement_name, plan.placement.name());
  EXPECT_EQ(r.placement_size, plan.placement.size());
  EXPECT_EQ(r.predicted_emax, plan.predicted_emax);
  EXPECT_EQ(r.prediction_exact, plan.prediction_exact);
  EXPECT_EQ(r.lower_bound, plan.lower_bound);
  EXPECT_EQ(r.measured_emax, measure_emax(torus, plan));
  ASSERT_NE(r.loads, nullptr);
  EXPECT_EQ(r.loads->max_load(), r.measured_emax);
}

TEST(ComputeQuery, RejectsInvalidParameters) {
  EXPECT_THROW(compute_query(key_dk(3, 8, 99)), Error);  // t > k
  Radices mixed{4, 6};
  EXPECT_THROW(compute_query(make_query_key(mixed, 1, RouterKind::Odr,
                                            QueryOp::Plan)),
               Error);  // planning requires uniform radix
}

// ---------------------------------------------------------------- PlanCache

TEST(PlanCache, DeterministicLruEvictionOrder) {
  // One shard, capacity 2: the eviction order is the global LRU order.
  PlanCache cache(2, 1);
  const QueryKey a = key_dk(2, 4), b = key_dk(2, 6), c = key_dk(2, 8);
  cache.put(a, dummy_result(a));
  cache.put(b, dummy_result(b));
  EXPECT_NE(cache.get(a), nullptr);  // promotes a; b is now LRU
  cache.put(c, dummy_result(c));     // evicts b
  EXPECT_EQ(cache.get(b), nullptr);
  EXPECT_NE(cache.get(a), nullptr);
  EXPECT_NE(cache.get(c), nullptr);

  const auto mru = cache.shard_keys_mru(0);
  ASSERT_EQ(mru.size(), 2u);
  EXPECT_EQ(mru[0], c);  // last touched
  EXPECT_EQ(mru[1], a);

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_EQ(s.misses, 1);  // the get(b) after eviction
  EXPECT_EQ(s.hits, 3);
}

TEST(PlanCache, HitReturnsTheExactObjectPut) {
  PlanCache cache(4, 2);
  const QueryKey a = key_dk(3, 8);
  const auto result = dummy_result(a);
  cache.put(a, result);
  EXPECT_EQ(cache.get(a).get(), result.get());  // same object, not a copy
}

TEST(PlanCache, RePutReplacesAndPromotes) {
  PlanCache cache(2, 1);
  const QueryKey a = key_dk(2, 4), b = key_dk(2, 6);
  cache.put(a, dummy_result(a));
  cache.put(b, dummy_result(b));
  const auto fresh = dummy_result(a);
  cache.put(a, fresh);  // replace + promote; nothing evicted
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_EQ(cache.get(a).get(), fresh.get());
  const auto mru = cache.shard_keys_mru(0);
  EXPECT_EQ(mru[0], a);
}

TEST(PlanCache, ShardSelectionIsStable) {
  PlanCache cache(16, 4);
  const QueryKey a = key_dk(3, 8);
  EXPECT_EQ(cache.shard_of(a), cache.shard_of(a));
  EXPECT_EQ(cache.shard_of(a), static_cast<std::size_t>(a.hash()) % 4);
}

// ------------------------------------------------------------------ Engine

TEST(Engine, AnswersASingleQuery) {
  EngineConfig config;
  config.threads = 2;
  Engine engine(config);
  const Response r = engine.run({key_dk(3, 8, 1, RouterKind::Odr,
                                        QueryOp::Load)});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.result->placement_size, 64);
  EXPECT_EQ(r.result->measured_emax, 32.0);
}

TEST(Engine, HammeredKeyComputesExactlyOnce) {
  // N threads submit the identical key concurrently; the engine must
  // compute one plan and serve every thread the same immutable result.
  EngineConfig config;
  config.threads = 4;
  Engine engine(config);
  const QueryKey key = key_dk(3, 8, 1, RouterKind::Odr, QueryOp::Load);

  constexpr int kClients = 16;
  std::vector<std::shared_ptr<const QueryResult>> results(kClients);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
      clients.emplace_back([&engine, &results, &failures, &key, i] {
        const Response r = engine.run({key});
        if (r.ok)
          results[static_cast<std::size_t>(i)] = r.result;
        else
          ++failures;
      });
    for (auto& c : clients) c.join();
  }
  EXPECT_EQ(failures.load(), 0);

  const EngineStats s = engine.stats();
  EXPECT_EQ(s.plans_computed, 1);
  EXPECT_EQ(s.cache_misses, 1);
  EXPECT_EQ(s.requests, kClients);
  EXPECT_EQ(s.completed, kClients);
  EXPECT_EQ(s.cache_hits + s.coalesced, kClients - 1);

  // Every client got the exact same object (shared, not re-rendered).
  for (int i = 1; i < kClients; ++i)
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), results[0].get());
}

TEST(Engine, ExpiredDeadlineTimesOutWithoutPoisoningTheCache) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const QueryKey key = key_dk(2, 6, 1, RouterKind::Odr, QueryOp::Load);

  // deadline_ms = 0 expires at submit: a deterministic structured timeout
  // that never reaches a worker.
  Request expired;
  expired.key = key;
  expired.deadline_ms = 0;
  const Response t = engine.run(expired);
  EXPECT_FALSE(t.ok);
  EXPECT_TRUE(t.timeout);
  EXPECT_NE(t.error.find("deadline exceeded"), std::string::npos);
  EXPECT_EQ(t.result, nullptr);
  EXPECT_EQ(engine.stats().timeouts, 1);
  EXPECT_EQ(engine.stats().plans_computed, 0);
  EXPECT_EQ(engine.cache().size(), 0u);  // nothing partial cached

  // The same key still computes fine afterwards — the timeout left no
  // poisoned entry behind.
  const Response r = engine.run({key});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(engine.stats().plans_computed, 1);
  EXPECT_EQ(r.result->measured_emax, 3.0);
}

TEST(Engine, InvalidRequestYieldsErrorResponseAndIsNotCached) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const QueryKey bad = key_dk(2, 4, 99);  // t > k
  const Response r = engine.run({bad});
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.timeout);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(engine.stats().errors, 1);
  EXPECT_EQ(engine.cache().size(), 0u);

  // Errors are not cached: a retry recomputes (and fails again).
  const Response again = engine.run({bad});
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(engine.stats().plans_computed, 2);
}

TEST(Engine, CacheHitReturnsIdenticalResultObject) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const QueryKey key = key_dk(2, 8, 1, RouterKind::Odr, QueryOp::Analyze);
  const Response miss = engine.run({key});
  const Response hit = engine.run({key});
  ASSERT_TRUE(miss.ok);
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(miss.result.get(), hit.result.get());
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.stats().plans_computed, 1);
}

TEST(Engine, DrainWaitsForAllSubmitted) {
  EngineConfig config;
  config.threads = 2;
  Engine engine(config);
  std::vector<Engine::Ticket> tickets;
  for (i32 k : {4, 5, 6, 7, 8})
    tickets.push_back(engine.submit({key_dk(2, k, 1, RouterKind::Odr,
                                            QueryOp::Load)}));
  engine.drain();
  // After drain every ticket is already fulfilled; wait() returns
  // immediately with the result.
  for (auto& t : tickets) EXPECT_TRUE(t.wait().ok);
  EXPECT_EQ(engine.stats().plans_computed, 5);
  EXPECT_EQ(engine.stats().queue_depth, 0);
}

TEST(Engine, LruEvictionAppliesUnderTheEngine) {
  EngineConfig config;
  config.threads = 1;
  config.cache_capacity = 2;
  config.cache_shards = 1;
  Engine engine(config);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);
  ASSERT_TRUE(engine.run({key_dk(2, 6)}).ok);
  ASSERT_TRUE(engine.run({key_dk(2, 8)}).ok);  // evicts k=4
  EXPECT_EQ(engine.stats().cache_evictions, 1);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);  // recomputes
  EXPECT_EQ(engine.stats().plans_computed, 4);
}

TEST(Engine, PublishStatsIsDeltaBased) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);

  {
    EngineConfig config;
    config.threads = 1;
    Engine engine(config);
    ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);
    engine.publish_stats();
    engine.publish_stats();  // no new work: must not double-count
    ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);  // cache hit
    engine.publish_stats();

    const obs::MetricsSnapshot snap = reg.snapshot();
    const i64* requests = snap.counter("service.requests");
    const i64* plans = snap.counter("service.plans_computed");
    const i64* hits = snap.counter("service.cache_hits");
    ASSERT_NE(requests, nullptr);
    ASSERT_NE(plans, nullptr);
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(*requests, 2);
    EXPECT_EQ(*plans, 1);
    EXPECT_EQ(*hits, 1);
    const obs::HistogramData* lat = snap.histogram("service.request_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 2);
  }

  reg.set_enabled(false);
  reg.reset();
}

TEST(Engine, WorkersDropNestedInstrumentationUnderAnEnabledRegistry) {
  // TSan regression for the second race family this PR fixed: engine
  // workers run compute_query -> plan_placement, whose TP_OBS_SCOPE
  // spans (plan.plan / plan.place / plan.route) used to record straight
  // into the single-writer registry from several workers at once when a
  // caller had the registry enabled.  Workers now carry the pool-worker
  // mark, so the nested spans drop out; the engine's own exact counters
  // still arrive via the publish_stats() delta path.  (Under the tsan
  // preset this hammer raced before the fix and is silent after.)
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);

  {
    EngineConfig config;
    config.threads = 4;
    Engine engine(config);
    constexpr int kClients = 8;
    std::atomic<int> failures{0};
    {
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&engine, &failures, i] {
          // Distinct keys: every request really computes a plan.
          const Response r = engine.run({key_dk(2, 4 + 2 * i)});
          if (!r.ok) ++failures;
        });
      for (auto& c : clients) c.join();
    }
    EXPECT_EQ(failures.load(), 0);
    engine.publish_stats();

    const obs::MetricsSnapshot snap = reg.snapshot();
    // No worker-side planner span leaked into the registry (the name may
    // exist from an earlier call-site resolution; the count must be 0).
    for (const char* name : {"plan.plan_us", "plan.place_us",
                             "plan.route_us"}) {
      const obs::HistogramData* h = snap.histogram(name);
      if (h != nullptr) {
        EXPECT_EQ(h->count, 0) << name;
      }
    }
    // The engine's published exact counters did arrive.
    const i64* requests = snap.counter("service.requests");
    const i64* plans = snap.counter("service.plans_computed");
    ASSERT_NE(requests, nullptr);
    ASSERT_NE(plans, nullptr);
    EXPECT_EQ(*requests, kClients);
    EXPECT_EQ(*plans, kClients);
  }

  reg.set_enabled(false);
  reg.reset();
}

// ------------------------------------------------------------------- JSONL

TEST(Jsonl, ParsesUniformAndExplicitRadices) {
  const BatchRequest a =
      parse_request_line(R"({"op":"load","d":3,"k":8,"t":2,"router":"udr"})",
                         1);
  EXPECT_EQ(a.request.key, key_dk(3, 8, 2, RouterKind::Udr, QueryOp::Load));
  EXPECT_EQ(a.id.as_int(), 1);  // defaulted to the line number

  const BatchRequest b = parse_request_line(
      R"({"id":"x","radices":[8,4,6],"t":1})", 7);
  Radices expect{4, 6, 8};
  EXPECT_EQ(b.request.key,
            make_query_key(expect, 1, RouterKind::Odr, QueryOp::Plan));
  EXPECT_EQ(b.id.as_string(), "x");
}

TEST(Jsonl, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request_line("nope", 1), Error);
  EXPECT_THROW(parse_request_line(R"({"d":3})", 1), Error);  // missing k
  EXPECT_THROW(parse_request_line(R"({"d":3,"k":8,"typo":1})", 1), Error);
  EXPECT_THROW(parse_request_line(R"({"k":4,"radices":[4,4]})", 1), Error);
  EXPECT_THROW(parse_request_line(R"({"d":3,"k":8,"deadline_ms":-5})", 1),
               Error);
  EXPECT_THROW(parse_request_line(R"({"d":99,"k":2})", 1), Error);
}

TEST(Jsonl, ResponseEchoesArbitraryIdValues) {
  Response resp;
  resp.ok = false;
  resp.error = "boom";
  const obs::JsonValue id = obs::parse_json(R"({"trace":"abc","n":3})");
  const obs::JsonValue out = response_to_json(id, resp);
  EXPECT_EQ(out.dump(),
            R"({"id":{"trace":"abc","n":3},"ok":false,"error":"boom"})");
}

std::string batch_output(const std::string& input, i32 threads) {
  EngineConfig config;
  config.threads = threads;
  Engine engine(config);
  std::istringstream in(input);
  std::ostringstream out;
  run_batch(engine, in, out);
  return out.str();
}

TEST(Jsonl, BatchOutputIsByteIdenticalAcrossPoolWidths) {
  // Responses are a pure function of the request — no timing or cache
  // fields — so the full batch output must match byte-for-byte between a
  // single worker and a wide pool (including error lines).
  std::string input;
  for (i32 k : {4, 6, 8, 4, 6, 8, 5, 7})
    input += R"({"op":"load","d":2,"k":)" + std::to_string(k) + "}\n";
  input += R"({"op":"analyze","d":2,"k":6})" "\n";
  input += R"({"op":"bounds","d":3,"k":4,"router":"udr"})" "\n";
  input += R"({"id":"bad","d":2})" "\n";  // validation error line
  const std::string serial = batch_output(input, 1);
  const std::string parallel = batch_output(input, 8);
  EXPECT_EQ(serial, parallel);
  // Repeat run: output is also stable across cold/warm engines.
  EXPECT_EQ(serial, batch_output(input, 8));
}

TEST(Jsonl, ServeAnswersLineByLine) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::istringstream in(
      "{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n"
      "garbage\n"
      "{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(engine, in, out), 3);
  std::istringstream lines(out.str());
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  EXPECT_EQ(l1, l3);  // second answer came from the cache, same bytes
  EXPECT_NE(l2.find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(engine.stats().cache_hits, 1);
}

// -------------------------------------------------------------- Telemetry

TEST(SlowQueryLog, KeepsTheNSlowestSorted) {
  SlowQueryLog log(3);
  for (i64 us : {50, 10, 90, 30, 70}) {
    RequestSpan span;
    span.total_us = us;
    span.outcome = SpanOutcome::Computed;
    log.record(span);
  }
  const auto slowest = log.slowest();
  ASSERT_EQ(slowest.size(), 3u);  // bounded at capacity
  EXPECT_EQ(slowest[0].total_us, 90);
  EXPECT_EQ(slowest[1].total_us, 70);
  EXPECT_EQ(slowest[2].total_us, 50);
  EXPECT_TRUE(log.recent_failures().empty());  // no timeout/error recorded
}

TEST(SlowQueryLog, FailureRingIsNewestFirstAndBounded) {
  SlowQueryLog log(2);
  for (int i = 0; i < 4; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "f%d", i);  // GCC 12 restrict workaround
    RequestSpan span;
    span.request_id = buf;
    span.total_us = i;
    span.outcome = i % 2 == 0 ? SpanOutcome::Timeout : SpanOutcome::Error;
    log.record(span);
  }
  const auto failures = log.recent_failures();
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].request_id, "f3");  // newest first
  EXPECT_EQ(failures[1].request_id, "f2");
}

TEST(Engine, EchoesClientRequestIdThroughEveryOutcome) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);

  Request computed;
  computed.key = key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Load);
  computed.id = "first";
  EXPECT_EQ(engine.run(computed).request_id, "first");

  Request hit = computed;
  hit.id = "again";
  const Response r = engine.run(hit);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.request_id, "again");

  Request expired;
  expired.key = computed.key;
  expired.id = "late";
  expired.deadline_ms = 0;
  const Response t = engine.run(expired);
  EXPECT_TRUE(t.timeout);
  EXPECT_EQ(t.request_id, "late");

  Request bad;
  bad.key = key_dk(2, 4, 99);  // t > k: computation error
  bad.id = "broken";
  EXPECT_EQ(engine.run(bad).request_id, "broken");
}

TEST(Engine, GeneratesStableIdsWhenTheClientSendsNone) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  EXPECT_EQ(engine.run({key_dk(2, 4)}).request_id, "r1");
  EXPECT_EQ(engine.run({key_dk(2, 4)}).request_id, "r2");
}

TEST(Engine, SlowQueryLogRecordsOutcomesAndFailures) {
  EngineConfig config;
  config.threads = 1;
  config.slow_log_capacity = 4;
  Engine engine(config);

  Request ok;
  ok.key = key_dk(2, 6, 1, RouterKind::Odr, QueryOp::Load);
  ok.id = "good";
  ASSERT_TRUE(engine.run(ok).ok);

  Request bad;
  bad.key = key_dk(2, 4, 99);
  bad.id = "bad";
  ASSERT_FALSE(engine.run(bad).ok);

  const auto slowest = engine.slowest_requests();
  ASSERT_EQ(slowest.size(), 2u);
  for (const RequestSpan& span : slowest)
    EXPECT_GE(span.total_us, 0);

  const auto failures = engine.recent_failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].request_id, "bad");
  EXPECT_EQ(failures[0].outcome, SpanOutcome::Error);
  EXPECT_EQ(std::string(span_outcome_name(failures[0].outcome)), "error");
}

TEST(Engine, ReportsWorkerStatesUptimeAndRates) {
  EngineConfig config;
  config.threads = 3;
  Engine engine(config);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);  // hit

  EXPECT_GE(engine.uptime_ms(), 0);
  const auto states = engine.worker_states();
  ASSERT_EQ(states.size(), 3u);
  engine.drain();
  for (const std::string& s : engine.worker_states()) EXPECT_EQ(s, "idle");

  // Both requests landed within the last 60s; one was a cache hit.
  const ServiceRates rates = engine.rates();
  EXPECT_GE(rates.qps_1s, 0.0);
  EXPECT_GT(rates.qps_60s, 0.0);
  EXPECT_GT(rates.hit_ratio_60s, 0.0);
  EXPECT_LE(rates.hit_ratio_60s, 1.0);
}

TEST(Engine, PublishesRequestScopedHistograms) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);
  {
    EngineConfig config;
    config.threads = 1;
    Engine engine(config);
    Request req;
    req.key = key_dk(2, 4);
    req.deadline_ms = 60000;  // far future: margin recorded, not missed
    ASSERT_TRUE(engine.run(req).ok);
    engine.publish_stats();

    const obs::MetricsSnapshot snap = reg.snapshot();
    for (const char* name :
         {"service.queue_wait_us", "service.fanin",
          "service.deadline_margin_us"}) {
      const obs::HistogramData* h = snap.histogram(name);
      ASSERT_NE(h, nullptr) << name;
      EXPECT_EQ(h->count, 1) << name;
    }
    const i64* inflight = snap.gauge("service.inflight");
    ASSERT_NE(inflight, nullptr);
    EXPECT_EQ(*inflight, 0);
  }
  reg.set_enabled(false);
  reg.reset();
}

// ------------------------------------------------------------------- Admin

std::string serve_one(Engine& engine, const std::string& line) {
  std::istringstream in(line + "\n");
  std::ostringstream out;
  run_serve(engine, in, out);
  std::string first = out.str();
  const std::size_t nl = first.find('\n');
  if (nl != std::string::npos) first.resize(nl);
  return first;
}

/// Top-level member names in document order — the schema fingerprint the
/// golden tests pin (admin responses carry live values, so the *names*
/// are the stable part).
std::string member_keys(const obs::JsonValue& doc) {
  std::string keys;
  for (const auto& [key, value] : doc.members()) {
    if (!keys.empty()) keys += ",";
    keys += key;
  }
  return keys;
}

TEST(Admin, StatuszGoldenSchema) {
  EngineConfig config;
  config.threads = 2;
  Engine engine(config);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);

  const obs::JsonValue doc =
      obs::parse_json(serve_one(engine, R"({"id":"s1","op":"statusz"})"));
  EXPECT_EQ(member_keys(doc),
            "id,ok,op,uptime_ms,version,git,compiler,build_type,engine,"
            "rates,totals,snapshot,listener");
  EXPECT_EQ(doc.find("id")->as_string(), "s1");
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("op")->as_string(), "statusz");
  EXPECT_FALSE(doc.find("version")->as_string().empty());

  EXPECT_EQ(member_keys(*doc.find("engine")),
            "pool_threads,queue_depth,queue_capacity,inflight,workers");
  EXPECT_EQ(doc.find("engine")->find("pool_threads")->as_int(), 2);
  EXPECT_EQ(doc.find("engine")->find("workers")->items().size(), 2u);

  EXPECT_EQ(member_keys(*doc.find("rates")),
            "qps_1s,qps_10s,qps_60s,hit_ratio_60s,p50_us_10s,p99_us_10s");
  EXPECT_EQ(member_keys(*doc.find("totals")),
            "requests,completed,cache_hits,coalesced,plans_computed,"
            "timeouts,errors");
  EXPECT_EQ(doc.find("totals")->find("requests")->as_int(), 1);

  // Durability block: no snapshot path configured here, so the status is
  // the all-disabled shape with stable member order.
  EXPECT_EQ(member_keys(*doc.find("snapshot")),
            "configured,load_outcome,warm_entries,saves,save_failures,"
            "last_save_outcome,last_save_entries,age_ms");
  EXPECT_FALSE(doc.find("snapshot")->find("configured")->as_bool());
  EXPECT_EQ(doc.find("snapshot")->find("load_outcome")->as_string(),
            "disabled");
  EXPECT_EQ(doc.find("snapshot")->find("last_save_outcome")->as_string(),
            "none");
  EXPECT_EQ(doc.find("snapshot")->find("age_ms")->as_int(), -1);

  // Listener block: no TCP front-end installed in this process, so the
  // all-none shape with the member order pinned (src/net/ fills it in).
  EXPECT_EQ(member_keys(*doc.find("listener")),
            "configured,address,state,open_connections,"
            "draining_connections,accepted,rejected");
  EXPECT_FALSE(doc.find("listener")->find("configured")->as_bool());
  EXPECT_EQ(doc.find("listener")->find("state")->as_string(), "none");
}

TEST(Admin, CachezGoldenSchema) {
  EngineConfig config;
  config.threads = 1;
  config.cache_shards = 2;
  config.cache_capacity = 8;
  Engine engine(config);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);

  const obs::JsonValue doc =
      obs::parse_json(serve_one(engine, R"({"op":"cachez"})"));
  EXPECT_EQ(member_keys(doc),
            "id,ok,op,capacity,entries,shards,age_us,snapshot");
  EXPECT_EQ(doc.find("entries")->as_int(), 1);
  EXPECT_EQ(doc.find("capacity")->as_int(), 8);
  const auto& shards = doc.find("shards")->items();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(member_keys(shards[0]), "shard,entries,hits,misses,evictions");
  // One real miss happened; it landed in exactly one shard.
  EXPECT_EQ(shards[0].find("misses")->as_int() +
                shards[1].find("misses")->as_int(),
            1);
  EXPECT_EQ(doc.find("age_us")->find("count")->as_int(), 1);
}

TEST(Admin, SlowzGoldenSchema) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  Request req;
  req.key = key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Load);
  req.id = "probe";
  req.deadline_ms = 60000;
  ASSERT_TRUE(engine.run(req).ok);

  const obs::JsonValue doc =
      obs::parse_json(serve_one(engine, R"({"op":"slowz"})"));
  EXPECT_EQ(member_keys(doc), "id,ok,op,slowest,failed");
  const auto& slowest = doc.find("slowest")->items();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(member_keys(slowest[0]),
            "request_id,key,outcome,total_us,queue_us,compute_us,fanin,"
            "shard,deadline_margin_us");
  EXPECT_EQ(slowest[0].find("request_id")->as_string(), "probe");
  EXPECT_EQ(slowest[0].find("outcome")->as_string(), "computed");
  EXPECT_EQ(doc.find("failed")->items().size(), 0u);
}

TEST(Admin, MetricszReportsRegistryAndPrometheus) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);
  {
    EngineConfig config;
    config.threads = 1;
    Engine engine(config);
    ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);

    const obs::JsonValue json =
        obs::parse_json(serve_one(engine, R"({"op":"metricsz"})"));
    EXPECT_EQ(member_keys(json), "id,ok,op,format,metrics");
    EXPECT_EQ(json.find("format")->as_string(), "json");
    const obs::JsonValue* counters = json.find("metrics")->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("service.requests"), nullptr);
    EXPECT_EQ(counters->find("service.requests")->as_int(), 1);

    const obs::JsonValue prom = obs::parse_json(serve_one(
        engine, R"({"op":"metricsz","format":"prometheus"})"));
    EXPECT_EQ(member_keys(prom), "id,ok,op,format,text");
    const std::string& text = prom.find("text")->as_string();
    EXPECT_NE(text.find("# TYPE tp_service_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("tp_service_request_us_bucket{le="),
              std::string::npos);

    EXPECT_NE(serve_one(engine, R"({"op":"metricsz","format":"xml"})")
                  .find("\"ok\":false"),
              std::string::npos);
  }
  reg.set_enabled(false);
  reg.reset();
}

TEST(Admin, UnknownAdminFieldFailsLoudly) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const std::string reply =
      serve_one(engine, R"({"op":"statusz","verbose":true})");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(reply.find("unknown admin request field"), std::string::npos);
}

TEST(Admin, QuitzStopsServeReadingFurtherLines) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  std::istringstream in(
      "{\"id\":1,\"op\":\"plan\",\"d\":2,\"k\":4}\n"
      "{\"id\":\"bye\",\"op\":\"quitz\"}\n"
      "{\"id\":2,\"op\":\"plan\",\"d\":2,\"k\":6}\n");
  std::ostringstream out;
  EXPECT_EQ(run_serve(engine, in, out), 2);  // third line never read
  EXPECT_NE(out.str().find("\"draining\":true"), std::string::npos);
  EXPECT_EQ(out.str().find("\"id\":2"), std::string::npos);
}

TEST(Admin, BatchAnswersAdminMidStreamAndQuitzStopsIntake) {
  EngineConfig config;
  config.threads = 2;
  Engine engine(config);
  std::istringstream in(
      "{\"id\":\"q1\",\"op\":\"load\",\"d\":2,\"k\":4}\n"
      "{\"id\":\"probe\",\"op\":\"statusz\"}\n"
      "{\"id\":\"q2\",\"op\":\"load\",\"d\":2,\"k\":6}\n"
      "{\"op\":\"quitz\"}\n"
      "{\"id\":\"q3\",\"op\":\"load\",\"d\":2,\"k\":8}\n");
  std::ostringstream out;
  EXPECT_EQ(run_batch(engine, in, out), 4);  // q3 never submitted
  std::istringstream lines(out.str());
  std::string l1, l2, l3, l4;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  std::getline(lines, l4);
  EXPECT_NE(l1.find("\"id\":\"q1\""), std::string::npos);
  EXPECT_NE(l2.find("\"op\":\"statusz\""), std::string::npos);
  EXPECT_NE(l3.find("\"id\":\"q2\""), std::string::npos);
  EXPECT_NE(l4.find("\"draining\":true"), std::string::npos);
  EXPECT_EQ(out.str().find("\"id\":\"q3\""), std::string::npos);
}

TEST(Jsonl, BatchOutputIsByteIdenticalWithInstrumentationOn) {
  // The per-request telemetry (ids, spans, slow-query log, rolling
  // windows, tracer events) must never leak timing into query responses:
  // with the registry AND tracer live, batch output still matches
  // byte-for-byte across pool widths.
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);
  obs::tracer().set_enabled(true);

  std::string input;
  for (i32 k : {4, 6, 8, 4, 6})
    input += R"({"id":"k)" + std::to_string(k) +
             R"(","op":"load","d":2,"k":)" + std::to_string(k) + "}\n";
  input += R"({"id":"bad","d":2})" "\n";
  const std::string serial = batch_output(input, 1);
  const std::string parallel = batch_output(input, 8);
  EXPECT_EQ(serial, parallel);

  obs::tracer().set_enabled(false);
  obs::tracer().clear();
  reg.set_enabled(false);
  reg.reset();
}

// The ISSUE acceptance scenario: a 100-request batch with duplicate keys
// computes each unique plan exactly once (verified through the obs
// counters) and every response matches the single-threaded direct
// computation byte-for-byte.
TEST(Acceptance, HundredRequestBatchComputesUniquePlansOnce) {
  obs::MetricsRegistry& reg = obs::registry();
  reg.reset();
  reg.set_enabled(true);

  // 100 requests over 10 unique keys (k in 4..8 x {odr, udr}, op load).
  std::string input;
  std::vector<std::string> lines;
  for (int i = 0; i < 100; ++i) {
    const i32 k = 4 + (i % 5);
    const char* router = (i / 5) % 2 == 0 ? "odr" : "udr";
    lines.push_back(R"({"id":)" + std::to_string(i) +
                    R"(,"op":"load","d":2,"k":)" + std::to_string(k) +
                    R"(,"router":")" + router + "\"}");
    input += lines.back() + "\n";
  }

  EngineConfig config;
  config.threads = 8;
  Engine engine(config);
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(run_batch(engine, in, out), 100);
  engine.publish_stats();

  const obs::MetricsSnapshot snap = reg.snapshot();
  const i64* plans = snap.counter("service.plans_computed");
  const i64* requests = snap.counter("service.requests");
  ASSERT_NE(plans, nullptr);
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(*requests, 100);
  EXPECT_EQ(*plans, 10);  // exactly once per unique key
  EXPECT_EQ(engine.stats().cache_hits + engine.stats().coalesced, 90);

  // Cross-check every response against a poolless single-threaded
  // serve over the same requests (engine with one worker, fresh cache).
  EngineConfig serial_config;
  serial_config.threads = 1;
  Engine serial(serial_config);
  std::istringstream in2(input);
  std::ostringstream out2;
  run_serve(serial, in2, out2);
  EXPECT_EQ(out.str(), out2.str());

  // And spot-check values against the planner called directly.
  const Torus torus(2, 6);
  const PlacementPlan plan = plan_placement(torus, 1, RouterKind::Odr);
  const double emax = measure_emax(torus, plan);
  std::istringstream result_lines(out.str());
  std::string line;
  int checked = 0;
  while (std::getline(result_lines, line)) {
    if (line.find("\"k\":6") == std::string::npos ||
        line.find("\"router\":\"odr\"") == std::string::npos)
      continue;
    const obs::JsonValue doc = obs::parse_json(line);
    EXPECT_TRUE(doc.find("ok")->as_bool());
    EXPECT_EQ(doc.find("measured_emax")->as_number(), emax);
    EXPECT_EQ(doc.find("processors")->as_int(), plan.placement.size());
    ++checked;
  }
  EXPECT_EQ(checked, 10);  // 100 requests / 10 unique, k=6+odr appears 10x

  reg.set_enabled(false);
  reg.reset();
}

}  // namespace
}  // namespace tp::service
