// Property sweep over torus *shapes*, including the edge cases the other
// suites do not reach: radix 2 (every correction is a tie; the two
// directed links to a neighbor are parallel wires), strongly unequal
// radices, and single dimensions.
//
//   S1  structural invariants (counts, round trips, involutions)
//   S2  BFS distance == Lee distance
//   S3  analyzers agree with the Definition 4 oracle
//   S4  conservation for ODR and UDR
//   S5  Theorem 1 cut on the natural diagonal placement

#include <gtest/gtest.h>

#include "src/bisection/dimension_cut.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/modular.h"
#include "src/placement/uniformity.h"
#include "src/routing/odr.h"
#include "src/torus/graph.h"

namespace tp {
namespace {

class ShapeSweep : public ::testing::TestWithParam<Radices> {
 protected:
  Placement natural_placement(const Torus& t) const {
    // The mixed-radix diagonal anchored on the last dimension: defined for
    // every shape, uniform along the non-anchor dimensions.
    return diagonal_placement_mixed(t, t.dims() - 1);
  }
};

TEST_P(ShapeSweep, S1_Structure) {
  Torus t(GetParam());
  EXPECT_EQ(t.num_directed_edges(), t.num_nodes() * 2 * t.dims());
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(t.node_id(t.coord(n)), n);
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e) {
    EXPECT_EQ(t.reverse_edge(t.reverse_edge(e)), e);
    const Link l = t.link(e);
    EXPECT_EQ(t.edge_id(l.tail, l.dim, l.dir), e);
  }
}

TEST_P(ShapeSweep, S2_BfsMatchesLee) {
  Torus t(GetParam());
  const auto dist = bfs_distances(t, 0);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(dist[static_cast<std::size_t>(n)], t.lee_distance(0, n));
}

TEST_P(ShapeSweep, S3_AnalyzersMatchOracle) {
  Torus t(GetParam());
  const Placement p = natural_placement(t);
  if (p.size() > 16) return;  // keep the oracle affordable
  OdrRouter odr;
  EXPECT_LT(odr_loads(t, p).max_abs_diff(reference_loads(t, p, odr)),
            1e-12);
  EXPECT_LT(udr_loads(t, p).max_abs_diff(udr_loads_enumerated(t, p)),
            1e-12);
}

TEST_P(ShapeSweep, S4_Conservation) {
  Torus t(GetParam());
  const Placement p = natural_placement(t);
  const double expected = expected_total_load(t, p);
  EXPECT_NEAR(odr_loads(t, p).total_load(), expected,
              1e-9 + 1e-12 * expected);
  EXPECT_NEAR(udr_loads(t, p).total_load(), expected,
              1e-9 + 1e-12 * expected);
}

TEST_P(ShapeSweep, S5_DimensionCutBalancesWhenUniform) {
  Torus t(GetParam());
  if (t.dims() < 2) return;
  const Placement p = natural_placement(t);
  const auto cut = best_dimension_cut(t, p);
  // A dimension with an even layer count and uniform distribution exists
  // for all shapes in this sweep except all-odd ones; in every case the
  // two-boundary construction gets within one layer of balance.
  i64 min_layer = t.num_nodes();
  for (i32 dim = 0; dim < t.dims(); ++dim)
    if (is_uniform_along(t, p, dim))
      min_layer = std::min(min_layer, p.size() / t.radix(dim));
  EXPECT_LE(cut.imbalance, min_layer);
}

std::string shape_name(const ::testing::TestParamInfo<Radices>& info) {
  std::string name = "shape";
  for (std::size_t i = 0; i < info.param.size(); ++i) {
    name += "_";
    name += std::to_string(info.param[i]);
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(Radices{2}, Radices{5}, Radices{2, 2}, Radices{2, 5},
                      Radices{3, 4}, Radices{4, 6}, Radices{2, 3, 4},
                      Radices{2, 2, 2}, Radices{3, 3, 2}, Radices{5, 2, 3},
                      Radices{2, 2, 2, 2}, Radices{3, 2, 2, 3}),
    shape_name);

TEST(Radix2, LinearPlacementAndLoadsWork) {
  // The all-ones linear placement on T_2^d: every correction is a tie,
  // every neighbor is reached by two parallel wires.
  Torus t(3, 2);
  const Placement p = linear_placement(t);
  EXPECT_EQ(p.size(), 4);
  EXPECT_TRUE(is_uniform(t, p));
  EXPECT_DOUBLE_EQ(odr_loads(t, p).max_load(), 2.0);
  EXPECT_DOUBLE_EQ(udr_loads(t, p).max_load(), 1.0);
  const auto cut = best_dimension_cut(t, p);
  EXPECT_EQ(cut.directed_edges, uniform_bisection_width(2, 3));
  EXPECT_EQ(cut.imbalance, 0);
}

}  // namespace
}  // namespace tp
