// Tests for the simulator extensions: multi-flit messages, hotspot
// traffic, and BSP h-relations.

#include <gtest/gtest.h>

#include <map>

#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"
#include "src/util/error.h"

namespace tp {
namespace {

SimConfig flit_config(i64 flits) {
  SimConfig config;
  config.flits_per_message = flits;
  return config;
}

TEST(MultiFlit, SingleMessageTakesFlitsTimesHops) {
  Torus t(2, 5);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{2, 1});
  const i64 hops = t.lee_distance(src, dst);
  for (i64 flits : {1, 2, 4}) {
    NetworkSim sim(t, nullptr, flit_config(flits));
    const SimMetrics m =
        sim.run({SimMessage{odr.canonical_path(t, src, dst), 0}});
    EXPECT_EQ(m.cycles, hops * flits) << "flits=" << flits;
    EXPECT_EQ(m.delivered, 1);
  }
}

TEST(MultiFlit, ContentionScalesWithFlits) {
  // Two messages sharing their first link: the second waits a full
  // message-transmission time.
  Torus t(1, 8);
  OdrRouter odr;
  std::vector<SimMessage> msgs{{odr.canonical_path(t, 0, 2), 0},
                               {odr.canonical_path(t, 0, 3), 0}};
  NetworkSim sim(t, nullptr, flit_config(3));
  const SimMetrics m = sim.run(msgs);
  // Unblocked: 3 hops * 3 flits = 9; +3 for the serialized first link.
  EXPECT_EQ(m.cycles, 12);
  EXPECT_EQ(m.delivered, 2);
}

TEST(MultiFlit, CompleteExchangeMakespanScalesRoughlyLinearly) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, 3);
  const SimMetrics one = NetworkSim(t).run(traffic.messages);
  const SimMetrics four =
      NetworkSim(t, nullptr, flit_config(4)).run(traffic.messages);
  EXPECT_GE(four.cycles, 3 * one.cycles);
  EXPECT_LE(four.cycles, 5 * one.cycles);
}

TEST(MultiFlit, ConfigValidated) {
  Torus t(2, 3);
  EXPECT_THROW(NetworkSim(t, nullptr, flit_config(0)), Error);
}

TEST(Hotspot, AllMessagesTargetTheHotspot) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const NodeId target = p.nodes()[2];
  const auto traffic = hotspot_traffic(t, p, odr, target, 9);
  EXPECT_EQ(static_cast<i64>(traffic.messages.size()), p.size() - 1);
  for (const SimMessage& m : traffic.messages) {
    EXPECT_EQ(m.path.target, target);
    m.path.verify_minimal(t);
  }
}

TEST(Hotspot, TargetMustBeAProcessor) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  NodeId non_proc = 0;
  while (p.contains(non_proc)) ++non_proc;
  EXPECT_THROW(hotspot_traffic(t, p, odr, non_proc, 1), Error);
}

TEST(Hotspot, MakespanBoundedByDegreeSerialization) {
  // All |P|-1 messages drain into the target through its 2d incoming
  // links: makespan >= ceil((|P|-1)/2d).
  Torus t(2, 8);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const NodeId target = p.nodes()[0];
  const auto traffic = hotspot_traffic(t, p, udr, target, 5);
  const SimMetrics m = NetworkSim(t).run(traffic.messages);
  EXPECT_EQ(m.delivered, p.size() - 1);
  EXPECT_GE(m.cycles, (p.size() - 1 + 3) / 4);
}

TEST(HRelation, EveryProcessorSendsExactlyH) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const i64 h = 3;
  const auto traffic = h_relation_traffic(t, p, udr, h, 17);
  EXPECT_EQ(static_cast<i64>(traffic.messages.size()), h * p.size());
  // Count per source.
  std::map<NodeId, i64> per_source;
  for (const SimMessage& m : traffic.messages) {
    ++per_source[m.path.source];
    EXPECT_NE(m.path.source, m.path.target);
    m.path.verify_minimal(t);
    EXPECT_TRUE(p.contains(m.path.target));
  }
  for (NodeId src : p.nodes()) EXPECT_EQ(per_source[src], h);
}

TEST(HRelation, ZeroHIsEmpty) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  EXPECT_TRUE(h_relation_traffic(t, p, odr, 0, 1).messages.empty());
}

TEST(HRelation, MakespanGrowsWithH) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  i64 prev = 0;
  for (i64 h : {1, 4, 16}) {
    const auto traffic = h_relation_traffic(t, p, udr, h, 23);
    const SimMetrics m = NetworkSim(t).run(traffic.messages);
    EXPECT_EQ(m.delivered, static_cast<i64>(traffic.messages.size()));
    EXPECT_GT(m.cycles, prev);
    prev = m.cycles;
  }
}

TEST(RandomRate, InjectionCountMatchesRateStatistically) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const double rate = 0.25;
  const i64 horizon = 400;
  const auto traffic = random_rate_traffic(t, p, odr, rate, horizon, 3);
  const double expected =
      rate * static_cast<double>(p.size()) * static_cast<double>(horizon);
  EXPECT_GT(static_cast<double>(traffic.messages.size()), 0.8 * expected);
  EXPECT_LT(static_cast<double>(traffic.messages.size()), 1.2 * expected);
  for (const SimMessage& m : traffic.messages) {
    EXPECT_GE(m.inject_cycle, 0);
    EXPECT_LT(m.inject_cycle, horizon);
    m.path.verify_minimal(t);
    EXPECT_TRUE(p.contains(m.path.source));
    EXPECT_TRUE(p.contains(m.path.target));
  }
}

TEST(RandomRate, ZeroRateIsSilenceFullRateIsEveryCycle) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  EXPECT_TRUE(random_rate_traffic(t, p, odr, 0.0, 10, 1).messages.empty());
  const auto full = random_rate_traffic(t, p, odr, 1.0, 10, 1);
  EXPECT_EQ(static_cast<i64>(full.messages.size()), p.size() * 10);
}

TEST(RandomRate, RunsThroughTheSimulator) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const auto traffic = random_rate_traffic(t, p, udr, 0.3, 100, 9);
  const SimMetrics m = NetworkSim(t).run(traffic.messages);
  EXPECT_EQ(m.delivered, static_cast<i64>(traffic.messages.size()));
}

TEST(RandomRate, Validation) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  EXPECT_THROW(random_rate_traffic(t, p, odr, 1.5, 10, 1), Error);
  EXPECT_THROW(random_rate_traffic(t, p, odr, -0.1, 10, 1), Error);
  EXPECT_THROW(random_rate_traffic(t, p, odr, 0.5, 0, 1), Error);
}

TEST(HRelation, GapEstimateIsStableForLargeH) {
  // makespan/h approaches the BSP gap of the design; it should not blow
  // up between h=8 and h=32.
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const auto t8 = h_relation_traffic(t, p, udr, 8, 29);
  const auto t32 = h_relation_traffic(t, p, udr, 32, 29);
  const double g8 = static_cast<double>(NetworkSim(t).run(t8.messages).cycles) / 8.0;
  const double g32 =
      static_cast<double>(NetworkSim(t).run(t32.messages).cycles) / 32.0;
  EXPECT_LE(g32, 1.5 * g8);
}

}  // namespace
}  // namespace tp
