// Tests for the cycle-accurate store-and-forward simulator, the traffic
// generators, and fault injection.

#include <gtest/gtest.h>

#include <numeric>

#include "src/routing/fault_router.h"
#include "src/load/complete_exchange.h"
#include "src/placement/placement.h"
#include "src/routing/odr.h"
#include "src/routing/udr.h"
#include "src/simulate/fault.h"
#include "src/simulate/network_sim.h"
#include "src/simulate/traffic.h"

namespace tp {
namespace {

TEST(NetworkSim, SingleMessageTakesLeeDistanceCycles) {
  Torus t(2, 5);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{2, 1});
  SimMessage m{odr.canonical_path(t, src, dst), 0};
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run({m});
  EXPECT_EQ(metrics.delivered, 1);
  EXPECT_EQ(metrics.cycles, t.lee_distance(src, dst));
  EXPECT_DOUBLE_EQ(metrics.mean_latency,
                   static_cast<double>(t.lee_distance(src, dst)));
}

TEST(NetworkSim, TwoMessagesContendOnASharedLink) {
  // Both messages need link (0,0)->(0,1) first: one waits a cycle.
  Torus t(1, 8);
  OdrRouter odr;
  std::vector<SimMessage> msgs{{odr.canonical_path(t, 0, 2), 0},
                               {odr.canonical_path(t, 0, 3), 0}};
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(msgs);
  EXPECT_EQ(metrics.delivered, 2);
  // Unblocked makespan would be 3; serialization on the first link makes
  // the second message one cycle late.
  EXPECT_EQ(metrics.cycles, 4);
  EXPECT_EQ(metrics.max_queue_depth, 2);
}

TEST(NetworkSim, ParallelMessagesDoNotInterfere) {
  Torus t(2, 4);
  OdrRouter odr;
  std::vector<SimMessage> msgs{
      {odr.canonical_path(t, t.node_id(Coord{0, 0}), t.node_id(Coord{0, 1})), 0},
      {odr.canonical_path(t, t.node_id(Coord{1, 0}), t.node_id(Coord{1, 1})), 0},
      {odr.canonical_path(t, t.node_id(Coord{2, 0}), t.node_id(Coord{2, 1})), 0}};
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(msgs);
  EXPECT_EQ(metrics.cycles, 1);
  EXPECT_EQ(metrics.delivered, 3);
}

TEST(NetworkSim, StaggeredInjection) {
  Torus t(1, 8);
  OdrRouter odr;
  std::vector<SimMessage> msgs{{odr.canonical_path(t, 0, 1), 5}};
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(msgs);
  EXPECT_EQ(metrics.cycles, 6);
  EXPECT_DOUBLE_EQ(metrics.mean_latency, 1.0);
}

TEST(NetworkSim, LinkForwardCountsMatchPathEdges) {
  Torus t(2, 4);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 0, t.node_id(Coord{1, 2}));
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run({SimMessage{path, 0}});
  i64 total = std::accumulate(metrics.link_forwards.begin(),
                              metrics.link_forwards.end(), i64{0});
  EXPECT_EQ(total, path.length());
  for (EdgeId e : path.edges)
    EXPECT_EQ(metrics.link_forwards[static_cast<std::size_t>(e)], 1);
}

TEST(NetworkSim, CompleteExchangeDeliversEverything) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, 7);
  EXPECT_EQ(static_cast<i64>(traffic.messages.size()),
            p.size() * (p.size() - 1));
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(traffic.messages);
  EXPECT_EQ(metrics.delivered, p.size() * (p.size() - 1));
  EXPECT_EQ(metrics.unroutable, 0);
}

TEST(NetworkSim, MakespanAtLeastMaxLoad) {
  // The busiest link must transmit its entire load one message per cycle,
  // so the makespan is at least E_max (ODR's loads are deterministic).
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, 3);
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(traffic.messages);
  const double emax = odr_loads(t, p).max_load();
  EXPECT_GE(metrics.cycles, static_cast<i64>(emax));
  EXPECT_GE(static_cast<double>(metrics.max_link_forwards), emax - 1e-9);
}

TEST(NetworkSim, SimulatedLinkTrafficMatchesAnalyticLoadsForOdr) {
  // ODR has one path per pair, so the simulator's per-link forward counts
  // must equal Definition 4's loads exactly.
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, 11);
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(traffic.messages);
  const LoadMap loads = odr_loads(t, p);
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e)
    EXPECT_DOUBLE_EQ(
        static_cast<double>(metrics.link_forwards[static_cast<std::size_t>(e)]),
        loads[e])
        << t.edge_str(e);
}

TEST(NetworkSim, FaultedPathIsDropped) {
  Torus t(1, 6);
  OdrRouter odr;
  const Path path = odr.canonical_path(t, 0, 2);
  EdgeSet faults(t);
  faults.insert(path.edges[1]);
  NetworkSim sim(t, &faults);
  const SimMetrics metrics = sim.run({SimMessage{path, 0}});
  EXPECT_EQ(metrics.delivered, 0);
  EXPECT_EQ(metrics.unroutable, 1);
}

TEST(Traffic, PermutationTrafficSendsAtMostOnePerProcessor) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const auto traffic = permutation_traffic(t, p, udr, 19);
  EXPECT_LE(static_cast<i64>(traffic.messages.size()), p.size());
  for (const SimMessage& m : traffic.messages) m.path.verify_minimal(t);
}

TEST(Traffic, FaultAwareGenerationAvoidsFailedLinks) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  const EdgeSet faults = sample_wire_faults(t, 3, 23);
  const auto traffic = complete_exchange_traffic(t, p, udr, 5, &faults);
  for (const SimMessage& m : traffic.messages)
    for (EdgeId e : m.path.edges) EXPECT_FALSE(faults.contains(e));
  // Everything that was generated also gets delivered under faults.
  NetworkSim sim(t, &faults);
  const SimMetrics metrics = sim.run(traffic.messages);
  EXPECT_EQ(metrics.delivered,
            static_cast<i64>(traffic.messages.size()));
}

TEST(Fault, SampleWireFaultsTakesBothDirections) {
  Torus t(2, 4);
  const EdgeSet faults = sample_wire_faults(t, 5, 31);
  EXPECT_EQ(faults.size(), 10);  // 5 wires, 2 directions each
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e)
    if (faults.contains(e)) {
      EXPECT_TRUE(faults.contains(t.reverse_edge(e)));
    }
}

TEST(Fault, OdrLosesPairsUdrKeeps) {
  // The paper's fault-tolerance claim: UDR's s! paths keep pairs connected
  // where ODR's single path fails.  Find a fault set that hits some ODR
  // path; UDR must still route every pair when few wires fail.
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  UdrRouter udr;
  bool found_demonstration = false;
  for (u64 seed = 0; seed < 10 && !found_demonstration; ++seed) {
    const EdgeSet faults = sample_wire_faults(t, 2, seed);
    const double odr_frac = routable_pair_fraction(t, p, odr, faults);
    const double udr_frac = routable_pair_fraction(t, p, udr, faults);
    EXPECT_GE(udr_frac, odr_frac - 1e-12);
    if (odr_frac < 1.0 && udr_frac == 1.0) found_demonstration = true;
  }
  EXPECT_TRUE(found_demonstration);
}

TEST(Fault, CountUnroutablePairsZeroWithoutFaults) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  const EdgeSet none(t);
  EXPECT_EQ(count_unroutable_pairs(t, p, UdrRouter(), none), 0);
  EXPECT_DOUBLE_EQ(routable_pair_fraction(t, p, OdrRouter(), none), 1.0);
}

TEST(FaultRouter, FiltersFaultedPaths) {
  Torus t(2, 5);
  UdrRouter udr;
  const NodeId src = 0, dst = t.node_id(Coord{1, 1});
  const auto all = udr.paths(t, src, dst);
  ASSERT_EQ(all.size(), 2u);
  EdgeSet faults(t);
  faults.insert(all[0].edges[0]);
  FaultTolerantRouter ft(udr, faults);
  const auto surviving = ft.paths(t, src, dst);
  ASSERT_EQ(surviving.size(), 1u);
  EXPECT_EQ(surviving[0].edges, all[1].edges);
  EXPECT_EQ(ft.num_paths(t, src, dst), 1);
  EXPECT_EQ(ft.name(), "UDR+faults");
  Xoshiro256SS rng(2);
  EXPECT_EQ(ft.sample_path(t, src, dst, rng).edges, all[1].edges);
}

TEST(FaultRouter, ThrowsWhenNoPathSurvives) {
  Torus t(2, 5);
  OdrRouter odr;
  const NodeId src = 0, dst = t.node_id(Coord{0, 1});
  EdgeSet faults(t);
  faults.insert(odr.canonical_path(t, src, dst).edges[0]);
  FaultTolerantRouter ft(odr, faults);
  EXPECT_EQ(ft.num_paths(t, src, dst), 0);
  Xoshiro256SS rng(2);
  EXPECT_THROW(ft.sample_path(t, src, dst, rng), Error);
}

TEST(NetworkSim, EmptyRun) {
  Torus t(2, 3);
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run({});
  EXPECT_EQ(metrics.cycles, 0);
  EXPECT_EQ(metrics.delivered, 0);
  EXPECT_DOUBLE_EQ(metrics.bottleneck_utilization(), 0.0);
}

TEST(NetworkSim, BottleneckUtilizationAccountsForFlits) {
  // One message over one link with 3 flits: the link is busy for all 3
  // cycles of the makespan, so utilization is exactly 1.  (A regression
  // for the pre-flit formula, which divided forwards by cycles and
  // reported 1/3.)
  Torus t(1, 8);
  OdrRouter odr;
  SimConfig config;
  config.flits_per_message = 3;
  NetworkSim sim(t, nullptr, config);
  const SimMetrics metrics = sim.run({SimMessage{odr.canonical_path(t, 0, 1), 0}});
  EXPECT_EQ(metrics.cycles, 3);
  EXPECT_EQ(metrics.max_link_forwards, 1);
  EXPECT_EQ(metrics.flits_per_message, 3);
  EXPECT_DOUBLE_EQ(metrics.bottleneck_utilization(), 1.0);
}

TEST(NetworkSim, LatencyPercentilesComeFromTheHistogram) {
  // Two messages with known latencies 1 and 2 on disjoint links.
  Torus t(2, 4);
  OdrRouter odr;
  std::vector<SimMessage> msgs{
      {odr.canonical_path(t, t.node_id(Coord{0, 0}), t.node_id(Coord{0, 1})), 0},
      {odr.canonical_path(t, t.node_id(Coord{1, 0}), t.node_id(Coord{1, 2})), 0}};
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(msgs);
  EXPECT_EQ(metrics.latency.count, 2);
  EXPECT_EQ(metrics.latency.min, 1);
  EXPECT_EQ(metrics.latency_max(), 2);
  EXPECT_GE(metrics.latency_p50(), 1.0);
  EXPECT_LE(metrics.latency_p95(), 2.0);
  EXPECT_LE(metrics.latency_p50(), metrics.latency_p95());
}

TEST(NetworkSim, BottleneckUtilizationIsHighUnderCompleteExchange) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  const auto traffic = complete_exchange_traffic(t, p, odr, 1);
  NetworkSim sim(t);
  const SimMetrics metrics = sim.run(traffic.messages);
  EXPECT_GT(metrics.bottleneck_utilization(), 0.3);
  EXPECT_LE(metrics.bottleneck_utilization(), 1.0);
}

}  // namespace
}  // namespace tp
