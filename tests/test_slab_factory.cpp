// Tests for the slab-search separator bound and the placement factory.

#include <gtest/gtest.h>

#include "src/bounds/slab_search.h"
#include "src/load/complete_exchange.h"
#include "src/load/formulas.h"
#include "src/placement/factory.h"
#include "src/placement/modular.h"
#include "src/util/error.h"

namespace tp {
namespace {

// --- slab search ---------------------------------------------------------

TEST(SlabSearch, HalfTorusSlabRecoversTheImprovedBound) {
  // For the uniform linear placement the best slab is (close to) the
  // half-torus, whose Lemma 1 value is the Section 4 bound c^2 k^{d-1}/8.
  Torus t(3, 8);
  const Placement p = linear_placement(t);
  const SlabBound best = best_slab_bound(t, p);
  EXPECT_GE(best.value, improved_lower_bound(1.0, 8, 3) - 1e-9);
  // Slab widths near k/2 are optimal for a uniform layer profile.
  EXPECT_NEAR(best.len, 4, 1);
}

TEST(SlabSearch, BoundHoldsAgainstMeasuredLoads) {
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 5, 6}) {
      Torus t(d, k);
      const Placement p = linear_placement(t);
      const SlabBound best = best_slab_bound(t, p);
      EXPECT_GE(odr_loads(t, p).max_load(), best.value - 1e-9)
          << "d=" << d << " k=" << k;
      EXPECT_GE(udr_loads(t, p).max_load(), best.value - 1e-9)
          << "d=" << d << " k=" << k;
    }
}

TEST(SlabSearch, BeatsSingletonBoundOnSkewedPlacements) {
  // Cluster all processors into two adjacent layers: a 2-layer slab holds
  // everything... a 1-layer slab splits them and its boundary is tiny
  // compared to the pair product, beating (|P|-1)/2d.
  Torus t(2, 8);
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.coord_of(n, 0) <= 1) nodes.push_back(n);
  const Placement p(t, std::move(nodes), "two-layers");
  const SlabBound best = best_slab_bound(t, p);
  EXPECT_GT(best.value, blaum_lower_bound(p.size(), 2));
}

TEST(SlabSearch, ReportsTheAchievingSlab) {
  Torus t(2, 6);
  const Placement p = linear_placement(t);
  const SlabBound best = best_slab_bound(t, p);
  EXPECT_GE(best.dim, 0);
  EXPECT_LT(best.dim, 2);
  EXPECT_GE(best.len, 1);
  EXPECT_LT(best.len, 6);
  EXPECT_GT(best.procs_in, 0);
  EXPECT_LT(best.procs_in, p.size());
  EXPECT_EQ(best.boundary, 4 * (t.num_nodes() / 6));
}

TEST(SlabSearch, NeedsTwoProcessors) {
  Torus t(2, 4);
  EXPECT_THROW(best_slab_bound(t, Placement(t, {0}, "one")), Error);
}

// --- placement factory ------------------------------------------------------

TEST(Factory, BuildsEveryFamily) {
  Torus t(2, 10);
  EXPECT_EQ(make_placement(t, "linear").nodes(),
            linear_placement(t).nodes());
  EXPECT_EQ(make_placement(t, "linear:3").nodes(),
            linear_placement(t, 3).nodes());
  EXPECT_EQ(make_placement(t, "multiple:2").size(), 20);
  EXPECT_EQ(make_placement(t, "diagonal:1").nodes(),
            shifted_diagonal_placement(t, 1).nodes());
  EXPECT_EQ(make_placement(t, "full").size(), 100);
  EXPECT_EQ(make_placement(t, "random:7:42").nodes(),
            random_placement(t, 7, 42).nodes());
  EXPECT_EQ(make_placement(t, "clustered:5").size(), 5);
  EXPECT_EQ(make_placement(t, "subtorus:0:3").size(), 10);
  EXPECT_EQ(make_placement(t, "perfect_lee").size(), 20);
  EXPECT_EQ(make_placement(t, "modular:5:1").size(), 20);
}

TEST(Factory, RejectsMalformedSpecs) {
  Torus t(2, 10);
  EXPECT_THROW(make_placement(t, "nonsense"), Error);
  EXPECT_THROW(make_placement(t, "multiple"), Error);     // missing t
  EXPECT_THROW(make_placement(t, "random"), Error);       // missing n
  EXPECT_THROW(make_placement(t, "linear:1:2"), Error);   // too many args
  EXPECT_THROW(make_placement(t, "clustered:abc"), Error);
  EXPECT_THROW(make_placement(t, "full:1"), Error);
}

TEST(Factory, FamilyPreconditionsPropagate) {
  Torus t(2, 4);  // 5 does not divide 4
  EXPECT_THROW(make_placement(t, "perfect_lee"), Error);
  EXPECT_THROW(make_placement(t, "modular:3"), Error);
  EXPECT_THROW(make_placement(t, "multiple:9"), Error);
}

TEST(Factory, NamesListIsComplete) {
  Torus t(2, 10);
  for (const std::string& name : placement_family_names()) {
    if (name == "file") continue;  // exercised in test_placement_io
    // Every listed family must be constructible with *some* spec.
    std::string spec = name;
    if (name == "multiple") spec += ":2";
    if (name == "random") spec += ":5";
    if (name == "clustered") spec += ":5";
    if (name == "subtorus") spec += ":0:0";
    if (name == "modular") spec += ":5";
    EXPECT_GT(make_placement(t, spec).size(), 0) << name;
  }
}

}  // namespace
}  // namespace tp
