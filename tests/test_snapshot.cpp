// Tests for the durability layer: checked binary I/O (CRC framing, atomic
// replace, append logs), PlanCache snapshots (bit-exact round trips,
// corruption fuzzing, version/build-key gating), checkpoint journals, and
// the engine's warm-boot / periodic-save plumbing.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/analysis/resilience.h"
#include "src/service/service.h"
#include "src/util/checked_io.h"
#include "src/util/error.h"

namespace tp::service {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << bytes;
}

bool file_exists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return is.good();
}

QueryKey key_dk(i32 d, i32 k, i32 t = 1, RouterKind r = RouterKind::Odr,
                QueryOp op = QueryOp::Plan) {
  Radices radices;
  for (i32 i = 0; i < d; ++i) radices.push_back(k);
  return make_query_key(radices, t, r, op);
}

std::shared_ptr<const QueryResult> dummy_result(const QueryKey& key) {
  auto r = std::make_shared<QueryResult>();
  r->key = key;
  r->placement_name = "dummy";
  return r;
}

// ------------------------------------------------------------------ CRC32

TEST(Crc32, KnownAnswerAndComposition) {
  // The IEEE 802.3 check value: CRC32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(util::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32(s, 0), 0u);

  // Streaming in two chunks must equal one shot.
  std::uint32_t crc = util::crc32_update(0, s, 4);
  crc = util::crc32_update(crc, s + 4, 5);
  EXPECT_EQ(crc, 0xCBF43926u);
}

// ------------------------------------------------- ByteBuffer / ByteView

TEST(ByteCodec, RoundTripsEveryType) {
  util::ByteBuffer buf;
  buf.put_u8(0xAB);
  buf.put_u32(0xDEADBEEFu);
  buf.put_u64(0x0123456789ABCDEFull);
  buf.put_i32(-42);
  buf.put_i64(-(i64{1} << 60));
  buf.put_f64(0.1);  // not exactly representable: bit pattern must survive
  buf.put_f64(-0.0);
  buf.put_string("");
  buf.put_string(std::string("nul\0byte", 8));

  util::ByteView view(buf.data());
  EXPECT_EQ(view.get_u8(), 0xAB);
  EXPECT_EQ(view.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(view.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(view.get_i32(), -42);
  EXPECT_EQ(view.get_i64(), -(i64{1} << 60));
  EXPECT_EQ(view.get_f64(), 0.1);
  const double neg_zero = view.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(view.get_string(), "");
  EXPECT_EQ(view.get_string(), std::string("nul\0byte", 8));
  EXPECT_TRUE(view.empty());
}

TEST(ByteCodec, ReadsPastTheEndThrow) {
  util::ByteBuffer buf;
  buf.put_u32(7);
  util::ByteView view(buf.data());
  EXPECT_EQ(view.get_u32(), 7u);
  EXPECT_THROW(view.get_u8(), Error);

  // A corrupt string length cannot walk out of the buffer.
  util::ByteBuffer lie;
  lie.put_u32(1000);  // claims 1000 bytes of string; none follow
  util::ByteView liar(lie.data());
  EXPECT_THROW(liar.get_string(), Error);
}

// ------------------------------------------------------- Checked files

TEST(CheckedFile, WriteReadRoundTrip) {
  const std::string path = temp_path("tp_checked_roundtrip.bin");
  std::remove(path.c_str());
  {
    util::CheckedFileWriter writer(path, "TESTMAG1");
    writer.append("first");
    writer.append("");  // empty payloads are legal records
    writer.append(std::string("bin\0ary", 7));
    writer.commit();
    EXPECT_GT(writer.bytes_written(), 0);
  }
  const std::vector<std::string> records =
      util::read_checked_file(path, "TESTMAG1");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], std::string("bin\0ary", 7));

  EXPECT_THROW(util::read_checked_file(path, "OTHERMAG"), Error);
  std::remove(path.c_str());
}

TEST(CheckedFile, AbandonedWriterLeavesNoTrace) {
  const std::string path = temp_path("tp_checked_abandon.bin");
  std::remove(path.c_str());
  {
    util::CheckedFileWriter writer(path, "TESTMAG1");
    writer.append("doomed");
    // no commit()
  }
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(CheckedFile, AbandonedRewritePreservesPreviousFile) {
  const std::string path = temp_path("tp_checked_preserve.bin");
  std::remove(path.c_str());
  {
    util::CheckedFileWriter writer(path, "TESTMAG1");
    writer.append("generation 1");
    writer.commit();
  }
  {
    util::CheckedFileWriter writer(path, "TESTMAG1");
    writer.append("generation 2, never committed");
  }
  const auto records = util::read_checked_file(path, "TESTMAG1");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "generation 1");
  std::remove(path.c_str());
}

TEST(CheckedFile, EveryByteFlipAndTruncationIsDetected) {
  const std::string path = temp_path("tp_checked_fuzz.bin");
  std::remove(path.c_str());
  {
    util::CheckedFileWriter writer(path, "TESTMAG1");
    writer.append("payload one");
    writer.append("payload two is a little longer");
    writer.commit();
  }
  const std::string good = read_file(path);
  ASSERT_GT(good.size(), util::kFileMagicSize);

  // Any single flipped bit anywhere — magic, length field, payload, CRC,
  // trailer — must be reported, never served or crashed on.
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    write_file(path, bad);
    EXPECT_THROW(util::read_checked_file(path, "TESTMAG1"), Error)
        << "byte flip at offset " << i << " went undetected";
  }

  // Any truncation — mid-magic, mid-length, mid-payload, mid-trailer.
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path, good.substr(0, len));
    EXPECT_THROW(util::read_checked_file(path, "TESTMAG1"), Error)
        << "truncation to " << len << " bytes went undetected";
  }

  write_file(path, good);
  EXPECT_EQ(util::read_checked_file(path, "TESTMAG1").size(), 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- Append logs

TEST(AppendLog, PersistsAcrossReopen) {
  const std::string path = temp_path("tp_appendlog.journal");
  std::remove(path.c_str());
  {
    util::AppendLog log(path, "TESTJRN1");
    EXPECT_TRUE(log.records().empty());
    EXPECT_FALSE(log.recovered_torn_tail());
    log.append("alpha");
    log.append("beta");
  }
  {
    util::AppendLog log(path, "TESTJRN1");
    ASSERT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[0], "alpha");
    EXPECT_EQ(log.records()[1], "beta");
    EXPECT_FALSE(log.recovered_torn_tail());
    log.append("gamma");
  }
  {
    util::AppendLog log(path, "TESTJRN1");
    EXPECT_EQ(log.records().size(), 3u);
  }
  std::remove(path.c_str());
}

TEST(AppendLog, TruncatesTornTailAndKeepsCompleteRecords) {
  const std::string path = temp_path("tp_appendlog_torn.journal");
  std::remove(path.c_str());
  {
    util::AppendLog log(path, "TESTJRN1");
    log.append("complete record");
  }
  const std::string good = read_file(path);

  // A crash mid-append leaves any prefix of the next record.  Whatever
  // the cut, reopening must recover exactly the complete records and
  // flag the torn tail; a further append then works normally.
  util::ByteBuffer next;
  next.put_string("next record, never fully written");
  std::string frame;
  {
    // Frame it the way append() would: u32 len, u32 crc, payload.
    util::ByteBuffer f;
    f.put_u32(static_cast<std::uint32_t>(next.data().size()));
    f.put_u32(util::crc32(next.data().data(), next.data().size()));
    frame = f.data() + next.data();
  }
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    write_file(path, good + frame.substr(0, cut));
    util::AppendLog log(path, "TESTJRN1");
    ASSERT_EQ(log.records().size(), 1u) << "cut at " << cut;
    EXPECT_EQ(log.records()[0], "complete record");
    EXPECT_TRUE(log.recovered_torn_tail()) << "cut at " << cut;
    log.append("recovered");
  }
  {
    util::AppendLog log(path, "TESTJRN1");
    ASSERT_EQ(log.records().size(), 2u);
    EXPECT_EQ(log.records()[1], "recovered");
  }
  std::remove(path.c_str());
}

TEST(AppendLog, WrongMagicRefused) {
  const std::string path = temp_path("tp_appendlog_magic.journal");
  std::remove(path.c_str());
  { util::AppendLog log(path, "TESTJRN1"); }
  EXPECT_THROW(util::AppendLog(path, "OTHERJRN"), Error);
  std::remove(path.c_str());
}

// ------------------------------------------------- QueryResult codec

TEST(SnapshotCodec, FullAnalyzeResultRoundTripsBitExact) {
  const QueryKey key = key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Analyze);
  const QueryResult original = compute_query(key);
  const QueryResult copy = decode_query_result(encode_query_result(original));

  EXPECT_EQ(copy.key, original.key);
  EXPECT_EQ(copy.placement_name, original.placement_name);
  EXPECT_EQ(copy.router_name, original.router_name);
  EXPECT_EQ(copy.summary, original.summary);
  EXPECT_EQ(copy.placement_size, original.placement_size);
  EXPECT_EQ(copy.predicted_emax, original.predicted_emax);
  EXPECT_EQ(copy.prediction_exact, original.prediction_exact);
  EXPECT_EQ(copy.lower_bound, original.lower_bound);
  EXPECT_EQ(copy.measured_emax, original.measured_emax);
  EXPECT_EQ(copy.mean_load, original.mean_load);
  EXPECT_EQ(copy.loaded_links, original.loaded_links);
  ASSERT_EQ(copy.loads != nullptr, original.loads != nullptr);
  if (original.loads != nullptr) {
    EXPECT_EQ(copy.loads->raw(), original.loads->raw());  // bit-exact
  }
  ASSERT_EQ(copy.bound_table.size(), original.bound_table.size());
  for (std::size_t i = 0; i < original.bound_table.size(); ++i) {
    EXPECT_EQ(copy.bound_table[i].name, original.bound_table[i].name);
    EXPECT_EQ(copy.bound_table[i].value, original.bound_table[i].value);
    EXPECT_EQ(copy.bound_table[i].applicable,
              original.bound_table[i].applicable);
    EXPECT_EQ(copy.bound_table[i].note, original.bound_table[i].note);
  }
  EXPECT_EQ(copy.has_slab, original.has_slab);
  if (original.has_slab) {
    EXPECT_EQ(copy.slab.value, original.slab.value);
    EXPECT_EQ(copy.slab.dim, original.slab.dim);
    EXPECT_EQ(copy.slab.lo, original.slab.lo);
    EXPECT_EQ(copy.slab.len, original.slab.len);
    EXPECT_EQ(copy.slab.procs_in, original.slab.procs_in);
    EXPECT_EQ(copy.slab.boundary, original.slab.boundary);
  }
}

TEST(SnapshotCodec, DamagedKeyFieldsAreRefusedByHashCheck) {
  const QueryResult original = compute_query(key_dk(2, 4));
  std::string payload = encode_query_result(original);
  // Layout: u64 hash, u8 ndims, i32 radix[0], i32 radix[1], ...
  // Nudge radix[1] from 4 to 5: still sorted, still decodes — but the
  // recomputed key hash no longer matches the stored one.
  const std::size_t radix1_lsb = 8 + 1 + 4;
  payload[radix1_lsb] = static_cast<char>(payload[radix1_lsb] ^ 1);
  EXPECT_THROW(decode_query_result(payload), Error);
}

TEST(SnapshotCodec, TrailingBytesRefused) {
  const QueryResult original = compute_query(key_dk(2, 4));
  std::string payload = encode_query_result(original);
  payload.push_back('\0');
  EXPECT_THROW(decode_query_result(payload), Error);
}

// ------------------------------------------------- PlanCache snapshots

TEST(Snapshot, SaveLoadRoundTripWarmServesIdenticalResults) {
  const std::string path = temp_path("tp_snapshot_roundtrip.snap");
  std::remove(path.c_str());

  PlanCache cache(8, 2);
  const std::vector<QueryKey> keys = {
      key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Analyze),
      key_dk(2, 4, 1, RouterKind::Udr, QueryOp::Load),
      key_dk(2, 6),
  };
  for (const QueryKey& key : keys)
    cache.put(key, std::make_shared<QueryResult>(compute_query(key)));

  const SnapshotWriteInfo write = save_cache_snapshot(cache, path);
  EXPECT_EQ(write.entries, 3);
  EXPECT_GT(write.bytes, 0);

  PlanCache warmed(8, 2);
  const SnapshotLoadInfo load = load_cache_snapshot(warmed, path);
  EXPECT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.entries, 3);
  EXPECT_EQ(warmed.size(), 3u);

  for (const QueryKey& key : keys) {
    const auto cold = cache.get(key);
    const auto warm = warmed.get(key);
    ASSERT_NE(warm, nullptr) << key.str();
    EXPECT_EQ(encode_query_result(*warm), encode_query_result(*cold))
        << key.str();  // byte-for-byte, doubles included
  }
  std::remove(path.c_str());
}

TEST(Snapshot, PreservesEvictionOrderAcrossRoundTrip) {
  const std::string path = temp_path("tp_snapshot_mru.snap");
  std::remove(path.c_str());

  // One shard so the recency order is global and observable.
  PlanCache cache(3, 1);
  const QueryKey a = key_dk(2, 4), b = key_dk(2, 6), c = key_dk(2, 8);
  cache.put(a, dummy_result(a));
  cache.put(b, dummy_result(b));
  cache.put(c, dummy_result(c));
  ASSERT_NE(cache.get(a), nullptr);  // recency now: a, c, b

  save_cache_snapshot(cache, path);
  PlanCache warmed(3, 1);
  ASSERT_TRUE(load_cache_snapshot(warmed, path).ok);

  const auto order = warmed.shard_keys_mru(0);
  const auto expected = cache.shard_keys_mru(0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, expected);

  // The next eviction therefore hits the same victim (b) in both.
  const QueryKey d = key_dk(2, 10);
  warmed.put(d, dummy_result(d));
  EXPECT_EQ(warmed.get(b), nullptr);
  EXPECT_NE(warmed.get(a), nullptr);
  EXPECT_NE(warmed.get(c), nullptr);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsAStructuredColdBoot) {
  PlanCache cache(8, 2);
  const SnapshotLoadInfo info =
      load_cache_snapshot(cache, temp_path("tp_no_such_snapshot.snap"));
  EXPECT_FALSE(info.ok);
  EXPECT_FALSE(info.error.empty());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(Snapshot, FormatVersionMismatchRefused) {
  const std::string path = temp_path("tp_snapshot_version.snap");
  std::remove(path.c_str());
  PlanCache cache(8, 2);
  const QueryKey key = key_dk(2, 4);
  cache.put(key, dummy_result(key));

  SnapshotIdentity future;
  future.format_version = kSnapshotFormatVersion + 1;
  save_cache_snapshot(cache, path, future);

  PlanCache warmed(8, 2);
  const SnapshotLoadInfo info = load_cache_snapshot(warmed, path);
  EXPECT_FALSE(info.ok);
  EXPECT_NE(info.error.find("format version"), std::string::npos);
  EXPECT_EQ(warmed.size(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, BuildKeyMismatchRefused) {
  const std::string path = temp_path("tp_snapshot_buildkey.snap");
  std::remove(path.c_str());
  PlanCache cache(8, 2);
  const QueryKey key = key_dk(2, 4);
  cache.put(key, dummy_result(key));

  SnapshotIdentity other;
  other.build_key = "torusplace 0.0.0 some-other-build";
  save_cache_snapshot(cache, path, other);

  PlanCache warmed(8, 2);
  const SnapshotLoadInfo info = load_cache_snapshot(warmed, path);
  EXPECT_FALSE(info.ok);
  EXPECT_NE(info.error.find("build key"), std::string::npos);
  EXPECT_EQ(warmed.size(), 0u);
  std::remove(path.c_str());
}

TEST(Snapshot, EveryCorruptionDegradesToColdNeverThrowsNeverPartial) {
  const std::string path = temp_path("tp_snapshot_fuzz.snap");
  std::remove(path.c_str());
  PlanCache cache(8, 2);
  for (const QueryKey& key :
       {key_dk(2, 4, 1, RouterKind::Odr, QueryOp::Load), key_dk(2, 6)})
    cache.put(key, std::make_shared<QueryResult>(compute_query(key)));
  save_cache_snapshot(cache, path);
  const std::string good = read_file(path);

  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    write_file(path, bad);
    PlanCache victim(8, 2);
    const SnapshotLoadInfo info = load_cache_snapshot(victim, path);
    EXPECT_FALSE(info.ok) << "byte flip at offset " << i;
    EXPECT_FALSE(info.error.empty()) << "byte flip at offset " << i;
    EXPECT_EQ(victim.size(), 0u) << "byte flip at offset " << i;
  }
  for (std::size_t len = 0; len < good.size(); ++len) {
    write_file(path, good.substr(0, len));
    PlanCache victim(8, 2);
    const SnapshotLoadInfo info = load_cache_snapshot(victim, path);
    EXPECT_FALSE(info.ok) << "truncation to " << len;
    EXPECT_EQ(victim.size(), 0u) << "truncation to " << len;
  }

  write_file(path, good);
  PlanCache warmed(8, 2);
  EXPECT_TRUE(load_cache_snapshot(warmed, path).ok);
  EXPECT_EQ(warmed.size(), 2u);
  std::remove(path.c_str());
}

// -------------------------------------------------- Engine integration

TEST(EngineSnapshot, DisabledByDefault) {
  EngineConfig config;
  config.threads = 1;
  Engine engine(config);
  const SnapshotStatus status = engine.snapshot_status();
  EXPECT_FALSE(status.configured);
  EXPECT_FALSE(status.load_attempted);
  EXPECT_EQ(status.load_outcome, "disabled");
  EXPECT_EQ(status.last_save_outcome, "none");
  EXPECT_FALSE(engine.save_snapshot());  // nowhere to save
}

TEST(EngineSnapshot, SaveIsSkippedWhenClean) {
  const std::string path = temp_path("tp_engine_dirty.snap");
  std::remove(path.c_str());
  EngineConfig config;
  config.threads = 1;
  config.snapshot_path = path;
  Engine engine(config);
  ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);

  EXPECT_TRUE(engine.save_snapshot(/*only_if_dirty=*/true));
  EXPECT_EQ(engine.snapshot_status().saves, 1);
  // Nothing computed since: the dirty-gated save is a no-op...
  EXPECT_TRUE(engine.save_snapshot(/*only_if_dirty=*/true));
  EXPECT_EQ(engine.snapshot_status().saves, 1);
  // ...but an unconditional save still writes.
  EXPECT_TRUE(engine.save_snapshot());
  EXPECT_EQ(engine.snapshot_status().saves, 2);

  ASSERT_TRUE(engine.run({key_dk(2, 6)}).ok);
  EXPECT_TRUE(engine.save_snapshot(/*only_if_dirty=*/true));
  const SnapshotStatus status = engine.snapshot_status();
  EXPECT_EQ(status.saves, 3);
  EXPECT_EQ(status.last_save_outcome, "ok");
  EXPECT_EQ(status.last_save_entries, 2);
  EXPECT_EQ(status.save_failures, 0);
  std::remove(path.c_str());
}

TEST(EngineSnapshot, WarmBootServesByteIdenticalWithZeroPlansComputed) {
  const std::string path = temp_path("tp_engine_warm.snap");
  std::remove(path.c_str());
  const std::string batch =
      "{\"id\":1,\"op\":\"analyze\",\"d\":2,\"k\":4}\n"
      "{\"id\":2,\"op\":\"load\",\"d\":2,\"k\":4,\"router\":\"udr\"}\n"
      "{\"id\":3,\"op\":\"plan\",\"d\":2,\"k\":6}\n";

  std::string cold_out;
  {
    EngineConfig config;
    config.threads = 2;
    config.snapshot_path = path;
    config.snapshot_save = true;  // shutdown save in the destructor
    Engine engine(config);
    std::istringstream in(batch);
    std::ostringstream out;
    EXPECT_EQ(run_batch(engine, in, out), 3);
    cold_out = out.str();
    EXPECT_GT(engine.stats().plans_computed, 0);
  }
  ASSERT_TRUE(file_exists(path));

  EngineConfig config;
  config.threads = 2;
  config.snapshot_path = path;
  config.snapshot_load = true;
  Engine engine(config);
  const SnapshotStatus status = engine.snapshot_status();
  EXPECT_TRUE(status.configured);
  EXPECT_TRUE(status.load_attempted);
  EXPECT_EQ(status.load_outcome, "warm") << status.load_outcome;
  EXPECT_EQ(status.warm_entries, 3);

  std::istringstream in(batch);
  std::ostringstream out;
  EXPECT_EQ(run_batch(engine, in, out), 3);
  EXPECT_EQ(out.str(), cold_out);  // byte-identical to cold computation
  EXPECT_EQ(engine.stats().plans_computed, 0);
  EXPECT_EQ(engine.stats().cache_hits, 3);
  std::remove(path.c_str());
}

TEST(EngineSnapshot, CorruptSnapshotDegradesToColdAndKeepsServing) {
  const std::string path = temp_path("tp_engine_corrupt.snap");
  std::remove(path.c_str());
  {
    EngineConfig config;
    config.threads = 1;
    config.snapshot_path = path;
    Engine engine(config);
    ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);
    ASSERT_TRUE(engine.save_snapshot());
  }
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_file(path, bytes);

  EngineConfig config;
  config.threads = 1;
  config.snapshot_path = path;
  config.snapshot_load = true;
  Engine engine(config);
  const SnapshotStatus status = engine.snapshot_status();
  EXPECT_TRUE(status.load_attempted);
  EXPECT_EQ(status.warm_entries, 0);
  EXPECT_EQ(status.load_outcome.rfind("error: ", 0), 0u)
      << status.load_outcome;

  // The service is degraded to a cold cache, not down.
  const Response response = engine.run({key_dk(2, 4)});
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(engine.stats().plans_computed, 1);
  std::remove(path.c_str());
}

TEST(EngineSnapshot, PeriodicSaverWritesWithoutShutdown) {
  const std::string path = temp_path("tp_engine_saver.snap");
  std::remove(path.c_str());
  {
    EngineConfig config;
    config.threads = 1;
    config.snapshot_path = path;
    config.snapshot_save = true;
    config.snapshot_interval_ms = 10;
    Engine engine(config);
    ASSERT_TRUE(engine.run({key_dk(2, 4)}).ok);
    // The background saver must persist the entry without any shutdown.
    for (int i = 0; i < 500 && engine.snapshot_status().saves == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(engine.snapshot_status().saves, 1);
    EXPECT_TRUE(file_exists(path));
  }
  PlanCache warmed(8, 2);
  EXPECT_TRUE(load_cache_snapshot(warmed, path).ok);
  EXPECT_EQ(warmed.size(), 1u);
  std::remove(path.c_str());
}

// --------------------------------------------------- Checkpoint journal

TEST(Checkpoint, RecordsResumeAcrossReopen) {
  const std::string dir = temp_path("tp_ckpt_resume");
  const std::string run_key = "test-run d=2 ks=4,6";
  std::remove((dir + "/cells.journal").c_str());
  {
    CheckpointJournal journal(dir, "cells", run_key);
    EXPECT_EQ(journal.resumed_cells(), 0);
    EXPECT_EQ(journal.find("cell-a"), nullptr);
    journal.record("cell-a", "result-a");
    journal.record("cell-b", "result-b");
  }
  {
    CheckpointJournal journal(dir, "cells", run_key);
    EXPECT_EQ(journal.resumed_cells(), 2);
    ASSERT_NE(journal.find("cell-a"), nullptr);
    EXPECT_EQ(*journal.find("cell-a"), "result-a");
    ASSERT_NE(journal.find("cell-b"), nullptr);
    EXPECT_EQ(*journal.find("cell-b"), "result-b");
    EXPECT_EQ(journal.find("cell-c"), nullptr);
    journal.record("cell-c", "result-c");
  }
  {
    CheckpointJournal journal(dir, "cells", run_key);
    EXPECT_EQ(journal.resumed_cells(), 3);
  }
  std::remove((dir + "/cells.journal").c_str());
}

TEST(Checkpoint, RunKeyMismatchRefused) {
  const std::string dir = temp_path("tp_ckpt_runkey");
  std::remove((dir + "/cells.journal").c_str());
  { CheckpointJournal journal(dir, "cells", "run A"); }
  EXPECT_THROW(CheckpointJournal(dir, "cells", "run B"), Error);
  // The original key still opens fine (refusal must not damage the file).
  { CheckpointJournal journal(dir, "cells", "run A"); }
  std::remove((dir + "/cells.journal").c_str());
}

TEST(Checkpoint, LatestRecordWinsOnReplay) {
  const std::string dir = temp_path("tp_ckpt_latest");
  std::remove((dir + "/cells.journal").c_str());
  {
    CheckpointJournal journal(dir, "cells", "run");
    journal.record("cell", "v1");
    journal.record("cell", "v2");
  }
  CheckpointJournal journal(dir, "cells", "run");
  ASSERT_NE(journal.find("cell"), nullptr);
  EXPECT_EQ(*journal.find("cell"), "v2");
  std::remove((dir + "/cells.journal").c_str());
}

// --------------------------------------------- DegradationReport codec

TEST(ResilienceCodec, ReportRoundTripsBitExact) {
  DegradationReport r;
  r.router_name = "udr";
  r.fault_rate = 1e-4;
  r.injected = 4032;
  r.delivered = 4030;
  r.dropped = 2;
  r.retries = 17;
  r.rerouted = 9;
  r.fail_events = 5;
  r.repair_events = 1;
  r.delivered_fraction = 4030.0 / 4032.0;
  r.baseline_cycles = 321;
  r.cycles = 407;
  r.completion_inflation = 407.0 / 321.0;
  r.baseline_emax = 32.0;
  r.degraded_emax = 37.0;
  r.emax_inflation = 37.0 / 32.0;

  const DegradationReport copy =
      decode_degradation_report(encode_degradation_report(r));
  EXPECT_EQ(copy.router_name, r.router_name);
  EXPECT_EQ(copy.fault_rate, r.fault_rate);
  EXPECT_EQ(copy.injected, r.injected);
  EXPECT_EQ(copy.delivered, r.delivered);
  EXPECT_EQ(copy.dropped, r.dropped);
  EXPECT_EQ(copy.retries, r.retries);
  EXPECT_EQ(copy.rerouted, r.rerouted);
  EXPECT_EQ(copy.fail_events, r.fail_events);
  EXPECT_EQ(copy.repair_events, r.repair_events);
  EXPECT_EQ(copy.delivered_fraction, r.delivered_fraction);
  EXPECT_EQ(copy.baseline_cycles, r.baseline_cycles);
  EXPECT_EQ(copy.cycles, r.cycles);
  EXPECT_EQ(copy.completion_inflation, r.completion_inflation);
  EXPECT_EQ(copy.baseline_emax, r.baseline_emax);
  EXPECT_EQ(copy.degraded_emax, r.degraded_emax);
  EXPECT_EQ(copy.emax_inflation, r.emax_inflation);

  // The JSONL rendering — what the resilience table and exports print —
  // is therefore identical too.
  EXPECT_EQ(degradation_json_line(copy), degradation_json_line(r));
}

TEST(ResilienceCodec, TrailingBytesRefused) {
  DegradationReport r;
  r.router_name = "odr";
  std::string payload = encode_degradation_report(r);
  payload.push_back('x');
  EXPECT_THROW(decode_degradation_report(payload), Error);
}

}  // namespace
}  // namespace tp::service
