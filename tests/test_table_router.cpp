// Tests for compiled routing tables: consistency, forwarding, and the
// table-size cost of path diversity.

#include <gtest/gtest.h>

#include <set>

#include "src/placement/placement.h"
#include "src/routing/adaptive.h"
#include "src/routing/odr.h"
#include "src/routing/table_router.h"
#include "src/routing/udr.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(RoutingTable, OdrTableIsConsistentAndMinimal) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  RoutingTable table(t, p, odr);
  table.verify(t);
  Xoshiro256SS rng(3);
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      const Path path = table.forward(t, src, dst, rng);
      path.verify_minimal(t);
    }
}

TEST(RoutingTable, OdrForwardReproducesTheCanonicalPath) {
  // ODR has one path per pair, so the table has exactly one hop choice at
  // every step and forwarding reproduces the canonical path.
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  RoutingTable table(t, p, odr);
  Xoshiro256SS rng(7);
  for (std::size_t i = 0; i < p.nodes().size(); i += 3)
    for (std::size_t j = 1; j < p.nodes().size(); j += 4) {
      const NodeId src = p.nodes()[i], dst = p.nodes()[j];
      if (src == dst) continue;
      EXPECT_EQ(table.forward(t, src, dst, rng).edges,
                odr.canonical_path(t, src, dst).edges);
    }
}

TEST(RoutingTable, UdrTableIsConsistent) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  RoutingTable table(t, p, udr);
  table.verify(t);
  Xoshiro256SS rng(5);
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes()) {
      if (src == dst) continue;
      table.forward(t, src, dst, rng).verify_minimal(t);
    }
}

TEST(RoutingTable, DiversityCostsTableSpace) {
  // UDR's larger path sets need strictly more table entries than ODR's
  // single paths; fully adaptive needs more still.
  Torus t(3, 4);
  const Placement p = linear_placement(t);
  const i64 odr_entries = RoutingTable(t, p, OdrRouter()).num_entries();
  const i64 udr_entries = RoutingTable(t, p, UdrRouter()).num_entries();
  AdaptiveMinimalRouter adaptive;
  const i64 ad_entries = RoutingTable(t, p, adaptive).num_entries();
  EXPECT_LT(odr_entries, udr_entries);
  EXPECT_LT(udr_entries, ad_entries);
}

TEST(RoutingTable, NextHopsEmptyOffPath) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  RoutingTable table(t, p, odr);
  // Find a node that lies on no ODR path toward p.nodes()[0]; dimension 0
  // is corrected first, so nodes whose second coordinate matches neither a
  // source's nor the destination's cannot appear... simply scan for one.
  const NodeId dst = p.nodes()[0];
  bool found_empty = false;
  for (NodeId n = 0; n < t.num_nodes() && !found_empty; ++n)
    if (n != dst && table.next_hops(n, dst).empty()) found_empty = true;
  EXPECT_TRUE(found_empty);
}

TEST(RoutingTable, RejectsNonProcessorDestination) {
  Torus t(2, 5);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  RoutingTable table(t, p, odr);
  NodeId non_proc = 0;
  while (p.contains(non_proc)) ++non_proc;
  EXPECT_THROW(table.next_hops(0, non_proc), Error);
  Xoshiro256SS rng(1);
  EXPECT_THROW(table.forward(t, 0, non_proc, rng), Error);
}

TEST(RoutingTable, MaxEntriesPerNodePositive) {
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  RoutingTable table(t, p, UdrRouter());
  EXPECT_GT(table.max_entries_per_node(), 0);
  EXPECT_LE(table.max_entries_per_node(), table.num_entries());
}

TEST(RoutingTable, UdrForwardingStaysWithinMinimalPaths) {
  // Hop-by-hop table forwarding may mix correction orders, but every
  // produced path must still be minimal and reach the destination.
  Torus t(3, 5);
  const Placement p = linear_placement(t);
  UdrRouter udr;
  RoutingTable table(t, p, udr);
  Xoshiro256SS rng(11);
  const NodeId src = p.nodes()[0];
  const NodeId dst = p.nodes()[p.nodes().size() / 2];
  std::set<std::vector<EdgeId>> seen;
  for (int i = 0; i < 50; ++i) {
    const Path path = table.forward(t, src, dst, rng);
    path.verify_minimal(t);
    seen.insert(path.edges);
  }
  EXPECT_GE(seen.size(), 2u);  // diversity survived compilation
}

}  // namespace
}  // namespace tp
