// Unit tests for the torus substrate: node/edge indexing, neighbors,
// distances, minimal path counts, and principal subtori (Definition 1).

#include <gtest/gtest.h>

#include <set>

#include "src/torus/torus.h"
#include "src/util/error.h"

namespace tp {
namespace {

TEST(Torus, BasicCounts) {
  Torus t(3, 4);
  EXPECT_EQ(t.dims(), 3);
  EXPECT_EQ(t.radix(0), 4);
  EXPECT_EQ(t.num_nodes(), 64);
  EXPECT_EQ(t.num_directed_edges(), 64 * 6);
  EXPECT_EQ(t.num_undirected_edges(), 64 * 3);
  EXPECT_TRUE(t.is_uniform_radix());
}

TEST(Torus, MixedRadix) {
  Torus t(Radices{2, 3, 5});
  EXPECT_EQ(t.num_nodes(), 30);
  EXPECT_FALSE(t.is_uniform_radix());
  EXPECT_EQ(t.radix(0), 2);
  EXPECT_EQ(t.radix(2), 5);
}

TEST(Torus, RejectsBadParameters) {
  EXPECT_THROW(Torus(0, 4), Error);
  EXPECT_THROW(Torus(9, 4), Error);  // > kMaxDims
  EXPECT_THROW(Torus(2, 1), Error);
  EXPECT_THROW(Torus(Radices{}), Error);
}

TEST(Torus, NodeCoordRoundTrip) {
  Torus t(Radices{3, 4, 5});
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(t.node_id(t.coord(n)), n);
    const Coord c = t.coord(n);
    for (i32 d = 0; d < t.dims(); ++d)
      EXPECT_EQ(t.coord_of(n, d), c[static_cast<std::size_t>(d)]);
  }
}

TEST(Torus, CoordValidation) {
  Torus t(2, 3);
  EXPECT_THROW(t.node_id(Coord{0}), Error);         // wrong arity
  EXPECT_THROW(t.node_id(Coord{0, 3}), Error);      // out of range
  EXPECT_THROW(t.node_id(Coord{-1, 0}), Error);
  EXPECT_THROW(t.coord(-1), Error);
  EXPECT_THROW(t.coord(9), Error);
}

TEST(Torus, NeighborsWrapAround) {
  Torus t(2, 4);
  const NodeId n = t.node_id(Coord{0, 3});
  EXPECT_EQ(t.neighbor(n, 1, Dir::Pos), t.node_id(Coord{0, 0}));
  EXPECT_EQ(t.neighbor(n, 1, Dir::Neg), t.node_id(Coord{0, 2}));
  EXPECT_EQ(t.neighbor(n, 0, Dir::Neg), t.node_id(Coord{3, 3}));
}

TEST(Torus, NeighborInvolution) {
  Torus t(3, 3);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    for (i32 d = 0; d < t.dims(); ++d) {
      EXPECT_EQ(t.neighbor(t.neighbor(n, d, Dir::Pos), d, Dir::Neg), n);
      EXPECT_EQ(t.neighbor(t.neighbor(n, d, Dir::Neg), d, Dir::Pos), n);
    }
}

TEST(Torus, EveryNodeHas2dNeighbors) {
  Torus t(3, 4);
  for (NodeId n : {NodeId{0}, NodeId{17}, NodeId{63}}) {
    std::set<NodeId> nbrs;
    for (i32 d = 0; d < t.dims(); ++d) {
      nbrs.insert(t.neighbor(n, d, Dir::Pos));
      nbrs.insert(t.neighbor(n, d, Dir::Neg));
    }
    EXPECT_EQ(nbrs.size(), 6u);  // distinct for k >= 3
    EXPECT_FALSE(nbrs.count(n));
  }
}

TEST(Torus, EdgeIdRoundTrip) {
  Torus t(Radices{3, 4});
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e) {
    const Link l = t.link(e);
    EXPECT_EQ(t.edge_id(l.tail, l.dim, l.dir), e);
    EXPECT_EQ(l.head, t.neighbor(l.tail, l.dim, l.dir));
  }
}

TEST(Torus, ReverseEdgeIsInvolution) {
  Torus t(2, 5);
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e) {
    const EdgeId r = t.reverse_edge(e);
    EXPECT_NE(r, e);
    EXPECT_EQ(t.reverse_edge(r), e);
    const Link le = t.link(e), lr = t.link(r);
    EXPECT_EQ(le.tail, lr.head);
    EXPECT_EQ(le.head, lr.tail);
  }
}

TEST(Torus, UndirectedIdPairsLinks) {
  Torus t(2, 4);
  std::set<EdgeId> canonical;
  for (EdgeId e = 0; e < t.num_directed_edges(); ++e)
    canonical.insert(t.undirected_id(e));
  EXPECT_EQ(static_cast<i64>(canonical.size()), t.num_undirected_edges());
}

TEST(Torus, Radix2ParallelLinksAreDistinct) {
  // With k = 2 both directions reach the same neighbor but are separate
  // links (parallel wires).
  Torus t(1, 2);
  EXPECT_EQ(t.num_directed_edges(), 4);
  const EdgeId pos = t.edge_id(0, 0, Dir::Pos);
  const EdgeId neg = t.edge_id(0, 0, Dir::Neg);
  EXPECT_NE(pos, neg);
  EXPECT_EQ(t.link(pos).head, t.link(neg).head);
}

TEST(Torus, LeeDistanceMatchesDefinition) {
  Torus t(2, 5);
  const NodeId a = t.node_id(Coord{0, 0});
  EXPECT_EQ(t.lee_distance(a, t.node_id(Coord{0, 1})), 1);
  EXPECT_EQ(t.lee_distance(a, t.node_id(Coord{0, 4})), 1);
  EXPECT_EQ(t.lee_distance(a, t.node_id(Coord{2, 2})), 4);
  EXPECT_EQ(t.lee_distance(a, t.node_id(Coord{3, 3})), 4);
  EXPECT_EQ(t.lee_distance(a, a), 0);
}

TEST(Torus, LeeDistanceIsAMetric) {
  Torus t(2, 4);
  for (NodeId a = 0; a < t.num_nodes(); ++a)
    for (NodeId b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.lee_distance(a, b), t.lee_distance(b, a));
      if (a != b) {
        EXPECT_GT(t.lee_distance(a, b), 0);
      }
      for (NodeId c = 0; c < t.num_nodes(); ++c)
        EXPECT_LE(t.lee_distance(a, c),
                  t.lee_distance(a, b) + t.lee_distance(b, c));
    }
}

TEST(Torus, LeeDistanceDiameter) {
  // Diameter of T_k^d is d * floor(k/2).
  Torus t(3, 4);
  i64 diameter = 0;
  for (NodeId b = 0; b < t.num_nodes(); ++b)
    diameter = std::max(diameter, t.lee_distance(0, b));
  EXPECT_EQ(diameter, 3 * 2);
}

TEST(Torus, ShortestWayAllCases) {
  Torus t(1, 6);
  EXPECT_EQ(t.shortest_way(0, 2, 2), Way::None);
  EXPECT_EQ(t.shortest_way(0, 0, 2), Way::Pos);
  EXPECT_EQ(t.shortest_way(0, 0, 4), Way::Neg);
  EXPECT_EQ(t.shortest_way(0, 0, 3), Way::Tie);  // k even, distance k/2
  Torus odd(1, 5);
  EXPECT_EQ(odd.shortest_way(0, 0, 2), Way::Pos);
  EXPECT_EQ(odd.shortest_way(0, 0, 3), Way::Neg);  // never a tie for odd k
}

TEST(Torus, NumMinimalPathsSimpleCases) {
  Torus t(2, 5);
  const NodeId a = t.node_id(Coord{0, 0});
  // Straight line: one path.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{0, 2})), 1);
  // L-shape (1,1): two interleavings.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{1, 1})), 2);
  // (2,1): C(3,1) = 3.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{2, 1})), 3);
  // (2,2): C(4,2) = 6.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{2, 2})), 6);
  EXPECT_EQ(t.num_minimal_paths(a, a), 1);
}

TEST(Torus, NumMinimalPathsTieDoubling) {
  Torus t(2, 4);  // distance 2 is a tie
  const NodeId a = t.node_id(Coord{0, 0});
  // One tie dimension, one unit dimension: 2 * C(3,1) = 6.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{2, 1})), 6);
  // Two tie dimensions: 4 * C(4,2) = 24.
  EXPECT_EQ(t.num_minimal_paths(a, t.node_id(Coord{2, 2})), 24);
}

TEST(Torus, PrincipalSubtorus) {
  Torus t(3, 4);
  for (i32 d = 0; d < 3; ++d)
    for (i32 v = 0; v < 4; ++v) {
      const auto nodes = t.principal_subtorus(d, v);
      EXPECT_EQ(static_cast<i64>(nodes.size()), 16);
      for (NodeId n : nodes) EXPECT_EQ(t.coord_of(n, d), v);
    }
}

TEST(Torus, PrincipalSubtoriPartitionNodes) {
  Torus t(2, 3);
  std::set<NodeId> all;
  for (i32 v = 0; v < 3; ++v)
    for (NodeId n : t.principal_subtorus(0, v)) {
      EXPECT_TRUE(all.insert(n).second) << "node in two subtori";
    }
  EXPECT_EQ(static_cast<i64>(all.size()), t.num_nodes());
}

TEST(Torus, NodeAndEdgeStrings) {
  Torus t(2, 3);
  EXPECT_EQ(t.node_str(t.node_id(Coord{1, 2})), "(1,2)");
  const EdgeId e = t.edge_id(t.node_id(Coord{0, 2}), 1, Dir::Pos);
  EXPECT_EQ(t.edge_str(e), "(0,2)->(0,0)");
}

TEST(Torus, AllNodesIsDense) {
  Torus t(2, 3);
  const auto nodes = t.all_nodes();
  ASSERT_EQ(static_cast<i64>(nodes.size()), 9);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(nodes[i], static_cast<NodeId>(i));
}

}  // namespace
}  // namespace tp
