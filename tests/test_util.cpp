// Unit tests for src/util: integer math, SmallVec, NdRange, PRNG, and
// permutation/subset enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string_view>
#include <vector>

#include "src/util/build_info.h"
#include "src/util/combinatorics.h"
#include "src/util/error.h"
#include "src/util/math.h"
#include "src/util/ndrange.h"
#include "src/util/prng.h"
#include "src/util/small_vec.h"

namespace tp {
namespace {

// --- math -----------------------------------------------------------------

TEST(Math, ModNormNormalizesNegatives) {
  EXPECT_EQ(mod_norm(-1, 5), 4);
  EXPECT_EQ(mod_norm(-5, 5), 0);
  EXPECT_EQ(mod_norm(-6, 5), 4);
  EXPECT_EQ(mod_norm(7, 5), 2);
  EXPECT_EQ(mod_norm(0, 5), 0);
}

TEST(Math, ModNormRejectsBadModulus) {
  EXPECT_THROW(mod_norm(1, 0), Error);
  EXPECT_THROW(mod_norm(1, -3), Error);
}

TEST(Math, Gcd) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 7), 7);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(13, 7), 1);
}

TEST(Math, IsCoprime) {
  EXPECT_TRUE(is_coprime(3, 8));
  EXPECT_FALSE(is_coprime(4, 8));
  EXPECT_TRUE(is_coprime(1, 1));
  EXPECT_TRUE(is_coprime(-3, 8));
}

TEST(Math, Powi) {
  EXPECT_EQ(powi(2, 10), 1024);
  EXPECT_EQ(powi(7, 0), 1);
  EXPECT_EQ(powi(0, 3), 0);
  EXPECT_EQ(powi(1, 62), 1);
  EXPECT_THROW(powi(2, 64), Error);
  EXPECT_THROW(powi(10, -1), Error);
}

TEST(Math, Factorial) {
  EXPECT_EQ(factorial(0), 1);
  EXPECT_EQ(factorial(1), 1);
  EXPECT_EQ(factorial(5), 120);
  EXPECT_EQ(factorial(20), 2432902008176640000LL);
  EXPECT_THROW(factorial(21), Error);
  EXPECT_THROW(factorial(-1), Error);
}

TEST(Math, Binomial) {
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(10, 0), 1);
  EXPECT_EQ(binomial(10, 10), 1);
  EXPECT_EQ(binomial(52, 5), 2598960);
  EXPECT_THROW(binomial(3, 4), Error);
}

TEST(Math, BinomialPascalIdentity) {
  for (i64 n = 2; n <= 30; ++n)
    for (i64 r = 1; r < n; ++r)
      EXPECT_EQ(binomial(n, r), binomial(n - 1, r - 1) + binomial(n - 1, r))
          << "n=" << n << " r=" << r;
}

TEST(Math, CyclicDistanceDefinition6) {
  EXPECT_EQ(cyclic_distance(0, 1, 5), 1);
  EXPECT_EQ(cyclic_distance(0, 4, 5), 1);   // wraps
  EXPECT_EQ(cyclic_distance(0, 2, 5), 2);
  EXPECT_EQ(cyclic_distance(1, 1, 5), 0);
  EXPECT_EQ(cyclic_distance(0, 3, 6), 3);   // exactly half: tie distance
  EXPECT_EQ(cyclic_distance(7, 2, 6), 1);   // arbitrary representatives
}

TEST(Math, CyclicDistanceSymmetricAndBounded) {
  for (i64 k = 2; k <= 9; ++k)
    for (i64 i = 0; i < k; ++i)
      for (i64 j = 0; j < k; ++j) {
        EXPECT_EQ(cyclic_distance(i, j, k), cyclic_distance(j, i, k));
        EXPECT_LE(cyclic_distance(i, j, k), k / 2);
      }
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_THROW(ceil_div(1, 0), Error);
}

TEST(Math, ModInverse) {
  for (i64 m : {2, 3, 5, 7, 8, 9, 12}) {
    for (i64 a = 1; a < m; ++a) {
      if (gcd(a, m) != 1) continue;
      const i64 inv = mod_inverse(a, m);
      EXPECT_EQ(mod_norm(a * inv, m), 1) << "a=" << a << " m=" << m;
    }
  }
  EXPECT_THROW(mod_inverse(2, 4), Error);
}

// --- SmallVec ---------------------------------------------------------------

TEST(SmallVec, BasicOperations) {
  SmallVec<i32> v;
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  v.push_back(1);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v.back(), 1);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
}

TEST(SmallVec, InitializerListAndEquality) {
  SmallVec<i32> a{1, 2, 3};
  SmallVec<i32> b{1, 2, 3};
  SmallVec<i32> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(SmallVec, CapacityEnforced) {
  SmallVec<i32> v(kMaxDims, 0);
  EXPECT_THROW(v.push_back(1), Error);
  EXPECT_THROW((SmallVec<i32>(kMaxDims + 1, 0)), Error);
}

TEST(SmallVec, ResizeAndAt) {
  SmallVec<i32> v{5};
  v.resize(3, 7);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[1], 7);
  EXPECT_EQ(v[2], 7);
  EXPECT_THROW(v.at(3), Error);
}

// --- NdRange ----------------------------------------------------------------

TEST(NdRange, CountsAllTuples) {
  Radices r{2, 3, 4};
  i64 count = 0;
  for (NdRange it(r); !it.done(); it.next()) ++count;
  EXPECT_EQ(count, 24);
  EXPECT_EQ(radix_product(r), 24);
}

TEST(NdRange, LexicographicOrder) {
  Radices r{2, 2};
  std::vector<Coord> seen;
  for (NdRange it(r); !it.done(); it.next()) seen.push_back(it.coord());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (Coord{0, 0}));
  EXPECT_EQ(seen[1], (Coord{0, 1}));
  EXPECT_EQ(seen[2], (Coord{1, 0}));
  EXPECT_EQ(seen[3], (Coord{1, 1}));
}

TEST(NdRange, RejectsZeroRadix) {
  EXPECT_THROW(NdRange(Radices{2, 0}), Error);
}

// --- PRNG -------------------------------------------------------------------

TEST(Prng, Deterministic) {
  Xoshiro256SS a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256SS a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Prng, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256SS rng(7);
  std::map<u64, int> counts;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    const u64 v = rng.below(6);
    ASSERT_LT(v, 6u);
    ++counts[v];
  }
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, draws / 6 - draws / 30) << "value " << v;
    EXPECT_LT(c, draws / 6 + draws / 30) << "value " << v;
  }
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256SS rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, BelowZeroThrows) {
  Xoshiro256SS rng(1);
  EXPECT_THROW(rng.below(0), Error);
}

// --- combinatorics ----------------------------------------------------------

TEST(Combinatorics, PermutationCount) {
  for (std::size_t n = 0; n <= 6; ++n) {
    SmallVec<i32> items;
    for (std::size_t i = 0; i < n; ++i) items.push_back(static_cast<i32>(i));
    std::set<std::vector<i32>> seen;
    for_each_permutation(items, [&](const SmallVec<i32>& perm) {
      seen.insert(std::vector<i32>(perm.begin(), perm.end()));
    });
    EXPECT_EQ(static_cast<i64>(seen.size()),
              factorial(static_cast<i64>(n)))
        << "n=" << n;
  }
}

TEST(Combinatorics, PermutationsAreRearrangements) {
  SmallVec<i32> items{4, 7, 9};
  for_each_permutation(items, [&](const SmallVec<i32>& perm) {
    std::vector<i32> sorted(perm.begin(), perm.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<i32>{4, 7, 9}));
  });
}

TEST(Combinatorics, SubsetCount) {
  int count = 0;
  for_each_subset(5, [&](std::uint32_t) { ++count; });
  EXPECT_EQ(count, 32);
}

TEST(Combinatorics, SubsetMasksDistinct) {
  std::set<std::uint32_t> seen;
  for_each_subset(4, [&](std::uint32_t m) { seen.insert(m); });
  EXPECT_EQ(seen.size(), 16u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(15));
}

TEST(Combinatorics, Popcount) {
  EXPECT_EQ(popcount32(0), 0);
  EXPECT_EQ(popcount32(0b1011), 3);
}

TEST(BuildInfo, EveryProvenanceFieldIsPopulated) {
  // Values come from configure-time CMake substitution; the contract is
  // that nothing is null or empty (git_describe degrades to "unknown"
  // outside a checkout, never to "").
  const BuildInfo& info = build_info();
  for (const char* field : {info.version, info.git_describe, info.compiler,
                            info.flags, info.build_type}) {
    ASSERT_NE(field, nullptr);
    EXPECT_NE(std::string_view(field), "");
  }
  EXPECT_NE(std::string_view(info.version).find('.'), std::string_view::npos);
}

}  // namespace
}  // namespace tp
