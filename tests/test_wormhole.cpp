// Tests for the flit-level wormhole simulator: pipelining, buffering,
// and — the point — real deadlock that the dateline virtual-channel
// discipline provably prevents (matching the static CDG analysis).

#include <gtest/gtest.h>

#include "src/placement/placement.h"
#include "src/routing/odr.h"
#include "src/simulate/wormhole.h"
#include "src/util/error.h"

namespace tp {
namespace {

std::vector<Path> ring_shift_traffic(const Torus& t, i64 shift) {
  // Every node sends to node + shift around the ring (canonical ODR).
  OdrRouter odr;
  std::vector<Path> paths;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    paths.push_back(
        odr.canonical_path(t, n, mod_norm(n + shift, t.num_nodes())));
  return paths;
}

TEST(Wormhole, SingleMessagePipelines) {
  // One message of L flits over h hops: head takes h cycles, then one
  // flit ejects per cycle: total = h + L (the wormhole pipeline).
  Torus t(1, 8);
  OdrRouter odr;
  WormholeConfig config;
  config.message_flits = 6;
  config.policy = VcPolicy::Dateline;
  WormholeSim sim(t, config);
  const auto result = sim.run({odr.canonical_path(t, 0, 3)});
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 1);
  EXPECT_EQ(result.cycles, 3 + 6);
}

TEST(Wormhole, SingleHopMessage) {
  Torus t(1, 4);
  OdrRouter odr;
  WormholeConfig config;
  config.message_flits = 3;
  WormholeSim sim(t, config);
  const auto result = sim.run({odr.canonical_path(t, 0, 1)});
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 1);
  EXPECT_EQ(result.cycles, 1 + 3);
}

TEST(Wormhole, RingCyclicTrafficDeadlocksWithOneVc) {
  // The classic: all nodes send halfway around the ring; every message
  // holds its first link's only VC while waiting for the next message's —
  // a cyclic wait that small buffers cannot absorb.
  Torus t(1, 4);
  WormholeConfig config;
  config.vcs_per_link = 1;
  config.buffer_flits = 2;
  config.message_flits = 8;
  config.policy = VcPolicy::SingleVc;
  config.stall_threshold = 200;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 2));
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.delivered, 0);
  EXPECT_EQ(result.stuck_messages, 4);
}

TEST(Wormhole, DatelineVcsDrainTheSameTraffic) {
  Torus t(1, 4);
  WormholeConfig config;
  config.vcs_per_link = 2;
  config.buffer_flits = 2;
  config.message_flits = 8;
  config.policy = VcPolicy::Dateline;
  config.stall_threshold = 2000;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 2));
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 4);
}

TEST(Wormhole, AnyFreeWithTwoVcsDeadlocksOnLongerMessages) {
  // Undisciplined VC selection deadlocks once messages span three links
  // (k = 6, shift 3): each message grabs mixed VC classes around the ring
  // and the cyclic wait closes over both channels.  More VCs without a
  // discipline are not deadlock freedom.
  Torus t(1, 6);
  WormholeConfig config;
  config.vcs_per_link = 2;
  config.buffer_flits = 2;
  config.message_flits = 8;
  config.policy = VcPolicy::AnyFree;
  config.stall_threshold = 500;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 3));
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.delivered, 0);
}

TEST(Wormhole, DatelineSurvivesTheLongerMessages) {
  Torus t(1, 6);
  WormholeConfig config;
  config.vcs_per_link = 2;
  config.buffer_flits = 2;
  config.message_flits = 8;
  config.policy = VcPolicy::Dateline;
  config.stall_threshold = 5000;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 3));
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, 6);
}

TEST(Wormhole, CompleteExchangeOnLinearPlacementDrains) {
  // ODR + dateline VCs on a 2-D torus: the paper's design, wormhole-
  // routed, completes the all-to-all exchange.
  Torus t(2, 4);
  const Placement p = linear_placement(t);
  OdrRouter odr;
  std::vector<Path> traffic;
  for (NodeId src : p.nodes())
    for (NodeId dst : p.nodes())
      if (src != dst) traffic.push_back(odr.canonical_path(t, src, dst));
  WormholeConfig config;
  config.message_flits = 4;
  config.policy = VcPolicy::Dateline;
  config.stall_threshold = 20000;
  WormholeSim sim(t, config);
  const auto result = sim.run(traffic);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.delivered, static_cast<i64>(traffic.size()));
  // Every flit crossed every hop exactly once.
  i64 total_hops = 0;
  for (const Path& path : traffic) total_hops += path.length();
  EXPECT_EQ(result.flits_moved, total_hops * config.message_flits);
}

TEST(Wormhole, ConfigValidation) {
  Torus t(1, 4);
  WormholeConfig config;
  config.vcs_per_link = 0;
  EXPECT_THROW(WormholeSim(t, config), Error);
  config.vcs_per_link = 1;
  config.policy = VcPolicy::Dateline;
  EXPECT_THROW(WormholeSim(t, config), Error);  // dateline needs 2 VCs
  config.policy = VcPolicy::SingleVc;
  config.buffer_flits = 0;
  EXPECT_THROW(WormholeSim(t, config), Error);
  config.buffer_flits = 1;
  config.message_flits = 0;
  EXPECT_THROW(WormholeSim(t, config), Error);
}

TEST(Wormhole, RejectsZeroHopMessages) {
  Torus t(1, 4);
  WormholeConfig config;
  WormholeSim sim(t, config);
  Path self;
  self.source = 0;
  self.target = 0;
  EXPECT_THROW(sim.run({self}), Error);
}

TEST(Wormhole, BiggerBuffersDoNotBreakDeadlockOnlyDelayIt) {
  Torus t(1, 4);
  WormholeConfig config;
  config.vcs_per_link = 1;
  config.buffer_flits = 3;
  config.message_flits = 16;  // still longer than total buffering
  config.policy = VcPolicy::SingleVc;
  config.stall_threshold = 500;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 2));
  EXPECT_TRUE(result.deadlocked);
}

TEST(Wormhole, DeadlockIsIndependentOfMessageLength) {
  // Even a message that fits entirely inside one VC buffer holds that VC
  // until its head moves on, so the single-VC cyclic wait persists for
  // short messages too — channel *ownership*, not buffer depth, is what
  // deadlocks wormhole networks (and what datelines fix).
  Torus t(1, 4);
  WormholeConfig config;
  config.vcs_per_link = 1;
  config.buffer_flits = 4;
  config.message_flits = 2;
  config.policy = VcPolicy::SingleVc;
  config.stall_threshold = 500;
  WormholeSim sim(t, config);
  const auto result = sim.run(ring_shift_traffic(t, 2));
  EXPECT_TRUE(result.deadlocked);
  // The same short messages drain under the dateline discipline.
  config.vcs_per_link = 2;
  config.policy = VcPolicy::Dateline;
  config.stall_threshold = 2000;
  WormholeSim dateline(t, config);
  const auto ok = dateline.run(ring_shift_traffic(t, 2));
  EXPECT_FALSE(ok.deadlocked);
  EXPECT_EQ(ok.delivered, 4);
}

}  // namespace
}  // namespace tp
