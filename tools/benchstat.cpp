// benchstat — perf baselines as committed JSON, with regression diffs.
//
//   benchstat [--out BENCH_2.json] [--dir .] [--reps 5]
//             [--threshold 0.10] [--gate name=frac[,name=frac...]]
//             [--check]
//
// Times a fixed set of representative workloads (load analyzers, the
// cycle-accurate simulators with and without link probes, the hotspot
// analyzer) with obs::Stopwatch, writes the results as
//
//   {"schema": "torusplace-bench/2",
//    "benchmarks": {"odr_loads/T8^3": {"mean_ns": ..., "min_ns": ...,
//                                      "reps": N}, ...}}
//
// When perf_event hardware counters are readable (see
// src/obs/perf_counters.h) each benchmark additionally carries
// "instructions", "cycles", "ipc" and (when cache events exist)
// "cache_miss_rate", aggregated over the timed reps on the calling
// thread.  Machines without a PMU simply omit the fields — /2 baselines
// stay diffable against /1 baselines either way, and the counter columns
// appear in the diff only when both sides carry them.
//
// The results are diffed against the most recent prior BENCH_*.json found
// in --dir (lexicographically latest name other than --out).  A benchmark
// whose mean regressed by more than --threshold (default 10%) is flagged;
// --gate overrides the threshold per benchmark (tighter or looser), and
// with --check the process then exits 2, so CI can gate on it.
//
// Besides the baseline diff, one intra-run invariant is asserted: the
// threaded analyzer must not lose to the serial one on a small torus
// (odr_loads_parallel4/T8^3 <= 1.05 x odr_loads/T8^3) — the work-size
// cutover in odr_loads_parallel (src/load/complete_exchange.cpp) exists
// precisely to keep small tori on the serial path, and this check keeps
// it honest without needing a baseline file.
//
// google-benchmark (bench/) remains the precision tool; benchstat trades
// precision for a committed, diffable baseline file.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/imbalance.h"
#include "src/core/torusplace.h"
#include "src/lint/lint.h"
#include "src/net/line_buffer.h"
#include "src/net/loadgen.h"
#include "src/net/socket.h"
#include "src/net/tcp_server.h"
#include "src/obs/json.h"
#include "src/obs/linkprobe.h"
#include "src/obs/perf_counters.h"
#include "src/obs/timer.h"
#include "src/service/service.h"
#include "tools/cli_args.h"

namespace tp {
namespace {

struct BenchResult {
  std::string name;
  double mean_ns = 0.0;
  i64 min_ns = 0;
  int reps = 0;
  // Hardware counters over the timed reps (calling thread); present only
  // when perf_event is readable on this machine.
  bool has_counters = false;   ///< instructions + cycles were measured
  i64 instructions = 0;
  i64 cycles = 0;
  double cache_miss_rate = -1.0;  ///< < 0 when cache events are missing

  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

// Accumulates a value per run so the optimizer cannot delete the work.
double g_sink = 0.0;

BenchResult time_fn(const std::string& name, int reps,
                    const std::function<void()>& fn) {
  BenchResult r{name, 0.0, 0, reps};
  fn();  // warm-up rep, not timed
  obs::PerfCounterSet counters;
  i64 before[obs::kNumPerfCounters] = {0, 0, 0, 0, 0};
  i64 after[obs::kNumPerfCounters] = {0, 0, 0, 0, 0};
  const bool counting = counters.open() && counters.read(before);
  i64 total = 0;
  for (int i = 0; i < reps; ++i) {
    obs::Stopwatch watch;
    fn();
    const i64 ns = watch.elapsed_ns();
    total += ns;
    r.min_ns = i == 0 ? ns : std::min(r.min_ns, ns);
  }
  if (counting && counters.read(after)) {
    if (counters.available(obs::kPerfInstructions)) {
      r.has_counters = true;
      r.instructions = after[obs::kPerfInstructions] -
                       before[obs::kPerfInstructions];
      r.cycles = after[obs::kPerfCycles] - before[obs::kPerfCycles];
    }
    if (counters.available(obs::kPerfCacheRefs) &&
        counters.available(obs::kPerfCacheMisses)) {
      const i64 refs =
          after[obs::kPerfCacheRefs] - before[obs::kPerfCacheRefs];
      const i64 misses =
          after[obs::kPerfCacheMisses] - before[obs::kPerfCacheMisses];
      if (refs > 0)
        r.cache_miss_rate =
            static_cast<double>(misses) / static_cast<double>(refs);
    }
  }
  counters.close();
  r.mean_ns = static_cast<double>(total) / static_cast<double>(reps);
  return r;
}

std::vector<BenchResult> run_benchmarks(int reps) {
  std::vector<BenchResult> results;

  {
    Torus torus(3, 8);
    const Placement p = linear_placement(torus);
    results.push_back(time_fn("odr_loads/T8^3", reps, [&] {
      g_sink += odr_loads(torus, p).max_load();
    }));
    results.push_back(time_fn("odr_loads_parallel4/T8^3", reps, [&] {
      g_sink += odr_loads_parallel(torus, p, 4).max_load();
    }));
    results.push_back(time_fn("odr_loads_table/T8^3", reps, [&] {
      g_sink += odr_loads_table(torus, p).max_load();
    }));
  }
  {
    Torus torus(3, 6);
    const Placement p = linear_placement(torus);
    results.push_back(time_fn("udr_loads/T6^3", reps, [&] {
      g_sink += udr_loads(torus, p).max_load();
    }));
  }
  {
    Torus torus(2, 8);
    const Placement p = linear_placement(torus);
    const OdrRouter router;
    const auto traffic = complete_exchange_traffic(torus, p, router, 1);
    results.push_back(time_fn("sim_complete_exchange/T8^2", reps, [&] {
      NetworkSim sim(torus);
      g_sink += static_cast<double>(sim.run(traffic.messages).cycles);
    }));
    results.push_back(time_fn("sim_link_probe/T8^2", reps, [&] {
      obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
      SimConfig config;
      config.probe = &probe;
      NetworkSim sim(torus, nullptr, config);
      g_sink += static_cast<double>(sim.run(traffic.messages).cycles);
      g_sink += static_cast<double>(probe.total_forwards());
    }));
    const LoadMap loads = odr_loads(torus, p);
    results.push_back(time_fn("analyze_imbalance/T8^2", reps, [&] {
      g_sink += analyze_imbalance(torus, loads, 10).cov;
    }));
  }
  {
    // The query service: a cold miss pays the full plan + exact-load
    // computation on a fresh engine; a warm hit is answered from the
    // sharded LRU; the coalesced burst answers 64 concurrent identical
    // requests with one computation.
    Radices radices{16, 16};
    const service::QueryKey key = service::make_query_key(
        radices, 1, RouterKind::Odr, service::QueryOp::Load);
    results.push_back(time_fn("service_cold_miss/T16^2", reps, [&] {
      service::Engine engine;
      g_sink += engine.run({key}).result->measured_emax;
    }));
    service::Engine warm;
    warm.run({key});
    results.push_back(time_fn("service_warm_hit/T16^2", reps, [&] {
      g_sink += warm.run({key}).result->measured_emax;
    }));
    results.push_back(time_fn("service_coalesced64/T16^2", reps, [&] {
      service::EngineConfig config;
      config.threads = 4;
      service::Engine engine(config);
      std::vector<service::Engine::Ticket> tickets;
      tickets.reserve(64);
      for (int i = 0; i < 64; ++i) tickets.push_back(engine.submit({key}));
      for (auto& t : tickets) g_sink += t.wait().ok ? 1.0 : 0.0;
    }));
  }
  {
    // Durability: serializing a warm cache to a checked snapshot file,
    // parsing + verifying it back, and the full engine warm boot
    // (construct, load, tear down).  Four resident load results on
    // mid-size tori make the file big enough to exercise the CRC paths.
    service::PlanCache cache(16, 4);
    for (i32 k : {8, 10, 12, 16}) {
      const service::QueryKey key = service::make_query_key(
          Radices{k, k}, 1, RouterKind::Odr, service::QueryOp::Load);
      cache.put(key, std::make_shared<service::QueryResult>(
                         service::compute_query(key)));
    }
    const std::string snap_path =
        (std::filesystem::temp_directory_path() / "tp_benchstat.snap")
            .string();
    results.push_back(time_fn("service_snapshot_save/T16^2", reps, [&] {
      g_sink += static_cast<double>(
          service::save_cache_snapshot(cache, snap_path).bytes);
    }));
    results.push_back(time_fn("service_snapshot_load/T16^2", reps, [&] {
      service::PlanCache warmed(16, 4);
      g_sink += static_cast<double>(
          service::load_cache_snapshot(warmed, snap_path).entries);
    }));
    results.push_back(time_fn("service_warm_boot/T16^2", reps, [&] {
      service::EngineConfig config;
      config.threads = 2;
      config.snapshot_path = snap_path;
      config.snapshot_load = true;
      service::Engine engine(config);
      g_sink += static_cast<double>(engine.snapshot_status().warm_entries);
    }));
    std::filesystem::remove(snap_path);
  }
  {
    // The TCP front-end: one warm-hit round trip over a real socket
    // (request line out, framed response line back — syscalls + framing
    // + the engine's cache-hit path), and the loadgen driver's sustained
    // closed-loop throughput at 32 clients.  The throughput entry is
    // recorded as nanoseconds per answered request (1e9 / qps), so
    // bigger = slower and the regression gate points the usual way.
    Radices radices{16, 16};
    const service::QueryKey key = service::make_query_key(
        radices, 1, RouterKind::Odr, service::QueryOp::Load);
    service::EngineConfig config;
    config.threads = 4;
    service::Engine engine(config);
    engine.run({key});
    net::TcpServer server(engine, net::TcpServerConfig{});
    server.start();

    net::Socket client = net::connect_to("127.0.0.1", server.port());
    net::LineBuffer lines(1 << 20);
    const std::string request =
        "{\"id\":1,\"op\":\"load\",\"d\":2,\"k\":16}\n";
    results.push_back(time_fn("serve_tcp_warm_hit/T16^2", reps, [&] {
      client.write_all(request);
      char buf[4096];
      for (;;) {
        if (const auto line = lines.next_line()) {
          g_sink += static_cast<double>(line->text.size());
          break;
        }
        const i64 got = client.read_some(buf, sizeof buf);
        if (got <= 0) break;
        lines.feed(buf, static_cast<std::size_t>(got));
      }
    }));
    client.shutdown_write();
    {
      char buf[4096];
      while (client.read_some(buf, sizeof buf) > 0) {
      }
    }

    net::LoadgenConfig load;
    load.port = server.port();
    load.clients = 32;
    load.duration_ms = 1000;
    load.warmup_ms = 200;
    load.universe = 8;
    const net::LoadgenReport report = net::run_loadgen(load);
    BenchResult qps{"loadgen_closed32_qps", 0.0, 0, 1};
    const double ns_per_request =
        report.qps > 0.0 ? 1e9 / report.qps : 0.0;
    qps.mean_ns = ns_per_request;
    qps.min_ns = static_cast<i64>(ns_per_request);
    results.push_back(qps);
  }

  // Whole-repo static-analysis scan (tokenize + token rules + the
  // architecture and determinism passes over every source file), timed
  // through the same scan_tree() the tp_lint driver uses, at 4 workers
  // for comparability across machines.  Only meaningful when run from
  // the repo root; elsewhere (bare build dir) the entry is skipped.
  if (std::filesystem::is_directory("src") &&
      std::filesystem::is_directory("tools")) {
    results.push_back(time_fn("tp_lint_full_tree", reps, [&] {
      const lint::TreeResult scan = lint::scan_tree(".", {"."}, 4);
      g_sink += static_cast<double>(scan.diags.size());
    }));
  }
  return results;
}

void write_json(const std::string& path,
                const std::vector<BenchResult>& results) {
  obs::JsonValue benches = obs::JsonValue::object();
  for (const BenchResult& r : results) {
    obs::JsonValue b = obs::JsonValue::object();
    b.set("mean_ns", obs::JsonValue(r.mean_ns));
    b.set("min_ns", obs::JsonValue(r.min_ns));
    b.set("reps", obs::JsonValue(static_cast<i64>(r.reps)));
    if (r.has_counters) {
      b.set("instructions", obs::JsonValue(r.instructions));
      b.set("cycles", obs::JsonValue(r.cycles));
      b.set("ipc", obs::JsonValue(r.ipc()));
    }
    if (r.cache_miss_rate >= 0.0)
      b.set("cache_miss_rate", obs::JsonValue(r.cache_miss_rate));
    benches.set(r.name, std::move(b));
  }
  obs::JsonValue root = obs::JsonValue::object();
  root.set("schema", obs::JsonValue("torusplace-bench/2"));
  root.set("benchmarks", std::move(benches));
  std::ofstream out(path);
  TP_REQUIRE(out.good(), "cannot write " + path);
  out << root.dump() << "\n";
}

/// Lexicographically latest BENCH_*.json in `dir` other than `out`;
/// empty when none exists.
std::string find_baseline(const std::string& dir, const std::string& out) {
  namespace fs = std::filesystem;
  std::string best;
  std::string best_name;  // compare filenames, not paths: "./BENCH_5.json"
                          // vs "BENCH_6.json" would order on the "./"
  if (!fs::is_directory(dir)) return best;
  const std::string out_name = fs::path(out).filename().string();
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0 || name.size() < 6) continue;
    if (name.size() < 5 ||
        name.compare(name.size() - 5, 5, ".json") != 0)
      continue;
    if (name == out_name) continue;
    if (name > best_name) {
      best_name = name;
      best = entry.path().string();
    }
  }
  return best;
}

/// "--gate name=frac[,name=frac...]" -> {name: frac}.
std::map<std::string, double> parse_gates(const std::string& spec) {
  std::map<std::string, double> gates;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    TP_REQUIRE(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
               "--gate entries look like name=frac, got '" + item + "'");
    char* end = nullptr;
    const double frac = std::strtod(item.c_str() + eq + 1, &end);
    TP_REQUIRE(end != nullptr && *end == '\0' && frac > 0.0,
               "--gate fraction must be a positive number: '" + item + "'");
    gates[item.substr(0, eq)] = frac;
  }
  return gates;
}

/// Prints the diff table; returns the number of regressions.
int diff_against(const std::string& baseline_path,
                 const std::vector<BenchResult>& results, double threshold,
                 const std::map<std::string, double>& gates) {
  std::ifstream in(baseline_path);
  TP_REQUIRE(in.good(), "cannot open baseline " + baseline_path);
  std::stringstream ss;
  ss << in.rdbuf();
  const obs::JsonValue root = obs::parse_json(ss.str());
  const obs::JsonValue* benches = root.find("benchmarks");
  TP_REQUIRE(benches != nullptr && benches->is_object(),
             "baseline has no benchmarks object: " + baseline_path);

  // Hardware-counter columns appear only when both sides carry the
  // numbers for at least one benchmark — diffing a /2 file against a /1
  // baseline (or a counter-less machine) keeps the plain wall-time table.
  bool show_ipc = false;
  bool show_miss = false;
  for (const BenchResult& r : results) {
    const obs::JsonValue* old_bench = benches->find(r.name);
    if (old_bench == nullptr) continue;
    if (r.has_counters && old_bench->find("ipc") != nullptr) show_ipc = true;
    if (r.cache_miss_rate >= 0.0 &&
        old_bench->find("cache_miss_rate") != nullptr)
      show_miss = true;
  }

  std::cout << "\ndiff vs " << baseline_path << " (threshold "
            << fmt(threshold * 100.0, 1) << "%):\n";
  std::vector<std::string> header{"benchmark", "old mean", "new mean",
                                  "delta", "status"};
  if (show_ipc) {
    header.push_back("old ipc");
    header.push_back("new ipc");
  }
  if (show_miss) {
    header.push_back("old miss%");
    header.push_back("new miss%");
  }
  Table table(header);
  int regressions = 0;
  for (const BenchResult& r : results) {
    const obs::JsonValue* old_bench = benches->find(r.name);
    std::vector<std::string> row;
    if (old_bench == nullptr) {
      row = {r.name, "-", fmt(r.mean_ns / 1e6, 3) + " ms", "-", "new"};
    } else {
      const obs::JsonValue* old_mean = old_bench->find("mean_ns");
      TP_REQUIRE(old_mean != nullptr,
                 "baseline benchmark missing mean_ns: " + r.name);
      const double old_ns = old_mean->as_number();
      const double delta = old_ns > 0.0 ? r.mean_ns / old_ns - 1.0 : 0.0;
      const auto gate = gates.find(r.name);
      const double limit = gate != gates.end() ? gate->second : threshold;
      std::string status = "ok";
      if (delta > limit) {
        status = "REGRESSED";
        ++regressions;
      } else if (delta < -limit) {
        status = "improved";
      }
      if (gate != gates.end() && status == "ok") status = "ok (gated)";
      std::ostringstream delta_str;
      delta_str << (delta >= 0 ? "+" : "") << fmt(delta * 100.0, 1) << "%";
      row = {r.name, fmt(old_ns / 1e6, 3) + " ms",
             fmt(r.mean_ns / 1e6, 3) + " ms", delta_str.str(), status};
    }
    if (show_ipc) {
      const obs::JsonValue* old_ipc =
          old_bench != nullptr ? old_bench->find("ipc") : nullptr;
      row.push_back(old_ipc != nullptr ? fmt(old_ipc->as_number(), 2) : "-");
      row.push_back(r.has_counters ? fmt(r.ipc(), 2) : "-");
    }
    if (show_miss) {
      const obs::JsonValue* old_miss =
          old_bench != nullptr ? old_bench->find("cache_miss_rate") : nullptr;
      row.push_back(old_miss != nullptr
                        ? fmt(old_miss->as_number() * 100.0, 1)
                        : "-");
      row.push_back(r.cache_miss_rate >= 0.0
                        ? fmt(r.cache_miss_rate * 100.0, 1)
                        : "-");
    }
    table.add_row(row);
  }
  table.print(std::cout);
  return regressions;
}

/// Intra-run invariant: the threaded load analyzer must stay within 5%
/// of the serial one on T8^3 (the work-size cutover should route such
/// small tori to the serial path outright).  Returns 0 or 1 regressions.
int check_parallel_cutover(const std::vector<BenchResult>& results) {
  const BenchResult* serial = nullptr;
  const BenchResult* parallel = nullptr;
  for (const BenchResult& r : results) {
    if (r.name == "odr_loads/T8^3") serial = &r;
    if (r.name == "odr_loads_parallel4/T8^3") parallel = &r;
  }
  if (serial == nullptr || parallel == nullptr || serial->min_ns <= 0)
    return 0;
  // Compare mins, not means: both names run the same serial code when the
  // cutover holds, so any mean gap is scheduler noise — min is the
  // noise-robust statistic for an identical-code-path invariant.
  const double ratio = static_cast<double>(parallel->min_ns) /
                       static_cast<double>(serial->min_ns);
  if (ratio <= 1.05) {
    std::cout << "parallel cutover ok: odr_loads_parallel4/T8^3 = "
              << fmt(ratio, 3) << "x odr_loads/T8^3 (limit 1.05x)\n";
    return 0;
  }
  std::cout << "REGRESSED: odr_loads_parallel4/T8^3 is " << fmt(ratio, 3)
            << "x odr_loads/T8^3 (limit 1.05x) — the work-size cutover "
               "should keep T8^3 on the serial path\n";
  return 1;
}

int run(int argc, char** argv) {
  const cli::Args args(argc, argv, 1,
                       {"out", "dir", "reps", "threshold", "gate"}, {"check"});
  const std::string out = args.get("out", "BENCH_2.json");
  const std::string dir = args.get("dir", ".");
  const int reps = static_cast<int>(args.get_int("reps", 5));
  const double threshold =
      std::strtod(args.get("threshold", "0.10").c_str(), nullptr);
  const std::map<std::string, double> gates = parse_gates(args.get("gate"));
  TP_REQUIRE(reps >= 1, "need at least one rep");
  TP_REQUIRE(threshold > 0.0, "threshold must be positive");

  const std::vector<BenchResult> results = run_benchmarks(reps);
  Table table({"benchmark", "mean", "min", "reps"});
  for (const BenchResult& r : results)
    table.add_row({r.name, fmt(r.mean_ns / 1e6, 3) + " ms",
                   fmt(static_cast<double>(r.min_ns) / 1e6, 3) + " ms",
                   fmt(r.reps)});
  table.print(std::cout);

  write_json(out, results);
  std::cout << "\nwrote " << out << "\n";

  const std::string baseline = find_baseline(dir, out);
  int regressions = check_parallel_cutover(results);
  if (baseline.empty()) {
    std::cout << "no prior BENCH_*.json in " << dir << ", nothing to diff\n";
  } else {
    regressions += diff_against(baseline, results, threshold, gates);
  }
  if (regressions > 0) {
    std::cout << regressions << " benchmark(s) regressed beyond "
              << fmt(threshold * 100.0, 1) << "%\n";
    if (args.has("check")) return 2;
  }
  return 0;
}

}  // namespace
}  // namespace tp

int main(int argc, char** argv) {
  try {
    return tp::run(argc, argv);
  } catch (const tp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
