#include "tools/cli_args.h"

#include <cstdlib>
#include <iostream>

namespace tp::cli {

int run_guarded(int argc, char** argv, int (*run)(int argc, char** argv)) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return kExitUsage;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitInternal;
  }
}

Args::Args(int argc, char** argv, int first, std::set<std::string> known,
           std::set<std::string> flags) {
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (flags.find(arg) == flags.end()) {
      if (i + 1 < argc)
        value = argv[++i];
      else
        throw UsageError("option --" + arg + " needs a value");
    }
    if (known.find(arg) == known.end() && flags.find(arg) == flags.end())
      throw UsageError("unknown option --" + arg);
    options_[arg] = value;
  }
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

i64 Args::get_int(const std::string& name, i64 fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

}  // namespace tp::cli
