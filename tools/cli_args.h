// Minimal command-line option parsing for the torusplace CLI.
//
// Supports "--name value" and "--name=value" options, valueless flags
// ("--name", optionally "--name=value"), and positional arguments;
// unknown options are an error so typos fail loudly.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/util/error.h"
#include "src/util/math.h"

namespace tp::cli {

/// Process exit codes.  Scripts and CI distinguish "you called it wrong"
/// from "an internal contract (TP_REQUIRE/TP_ASSERT) failed", so the two
/// error classes map to distinct codes (the conventional 2 for usage,
/// mirroring getopt-style tools).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitInternal = 3;

/// Thrown for malformed command lines (unknown option, missing value,
/// bad command).  Derived from tp::Error so legacy catch sites keep
/// working; run_guarded() maps it to kExitUsage instead of kExitInternal.
class UsageError : public Error {
 public:
  using Error::Error;
};

/// Wraps a CLI entry point with the exit-code contract: UsageError
/// prints "usage error: ..." and returns kExitUsage (2); any other
/// tp::Error prints "error: ..." and returns kExitInternal (3); a normal
/// return passes through.  Kept out of main() so the mapping itself is
/// unit-testable (see tests/test_cli_args.cpp).
int run_guarded(int argc, char** argv, int (*run)(int argc, char** argv));

class Args {
 public:
  /// Parses argv[first..); `known` lists the accepted option names
  /// (without the leading "--").  Names in `flags` never consume the next
  /// token: "--flag" stores an empty value (has() is true, get_int()
  /// returns its fallback) while "--flag=n" still carries n.
  Args(int argc, char** argv, int first, std::set<std::string> known,
       std::set<std::string> flags = {});

  bool has(const std::string& name) const { return options_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  i64 get_int(const std::string& name, i64 fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace tp::cli
