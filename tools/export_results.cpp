// export_results — regenerate the headline experiment series as CSV.
//
//   export_results [output_dir] [--stats-json dump.json ...]
//
// Writes one CSV per experiment family so the numbers in EXPERIMENTS.md
// can be re-derived, plotted, or diffed without scraping bench stdout:
//
//   odr_linear.csv      E7  measured vs closed forms across (d, k)
//   udr_linear.csv      E9  measured vs Theorem 4 bound and conjecture
//   multiple_odr.csv    E8  (t, k) grid with the t^2 bound
//   bounds.csv          E3/E6 all lower bounds vs measured loads
//   bisection.csv       E4/E5 cut sizes vs paper widths
//   full_torus.csv      E2  superlinearity series
//   fault.csv           E11 routability under failures
//   saturation.csv      E16 latency vs injection rate
//
// Any --stats-json arguments (or bare *.json positionals) are parsed as
// stats dumps written by `torusplace --stats-json` / TP_OBS_STATS (one
// JSON object per line) and merged into stats.csv: one row per metric
// with histogram summaries flattened into columns.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/analysis/csv.h"
#include "src/analysis/stats_merge.h"
#include "src/analysis/table.h"
#include "src/core/torusplace.h"
#include "src/obs/obs.h"

namespace tp {
namespace {

void export_odr_linear(const std::string& dir) {
  Table t({"d", "k", "placement_size", "emax", "interior_max",
           "paper_interior_form", "overall_form", "thm2_bound"});
  for (i32 d = 2; d <= 4; ++d)
    for (i32 k = 3; k <= (d == 2 ? 16 : d == 3 ? 12 : 6); ++k) {
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const LoadMap loads = odr_loads(torus, p);
      t.add_row({fmt(d), fmt(k), fmt(p.size()), fmt(loads.max_load(), 6),
                 d >= 3 ? fmt(loads.max_load_in_dim(torus, 1), 6) : "",
                 d >= 3 ? fmt(odr_linear_emax(k, d), 6) : "",
                 fmt(odr_linear_emax_overall(k, d), 6),
                 fmt(odr_linear_emax_upper(k, d), 6)});
    }
  save_csv(dir + "/odr_linear.csv", t);
}

void export_udr_linear(const std::string& dir) {
  Table t({"d", "k", "placement_size", "emax", "thm4_bound",
           "conjectured_form"});
  for (i32 d = 2; d <= 4; ++d)
    for (i32 k = 3; k <= (d == 2 ? 12 : d == 3 ? 10 : 5); ++k) {
      Torus torus(d, k);
      const Placement p = linear_placement(torus);
      const double conj = udr_linear_emax_conjectured(k, d);
      t.add_row({fmt(d), fmt(k), fmt(p.size()),
                 fmt(udr_loads(torus, p).max_load(), 6),
                 fmt(udr_linear_emax_upper(k, d), 6),
                 conj >= 0 ? fmt(conj, 6) : ""});
    }
  save_csv(dir + "/udr_linear.csv", t);
}

void export_multiple_odr(const std::string& dir) {
  Table t({"d", "k", "t", "placement_size", "emax", "thm3_bound"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8, 10})
      for (i32 mult = 1; mult <= 4; ++mult) {
        Torus torus(d, k);
        const Placement p = multiple_linear_placement(torus, mult);
        t.add_row({fmt(d), fmt(k), fmt(mult), fmt(p.size()),
                   fmt(odr_loads(torus, p).max_load(), 6),
                   fmt(multiple_odr_upper(mult, k, d), 6)});
      }
  save_csv(dir + "/multiple_odr.csv", t);
}

void export_bounds(const std::string& dir) {
  Table t({"d", "k", "t", "blaum", "bisection", "improved", "slab",
           "emax_odr", "emax_udr"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8})
      for (i32 mult = 1; mult <= 2; ++mult) {
        Torus torus(d, k);
        const Placement p = multiple_linear_placement(torus, mult);
        const auto bounds = all_bounds(torus, p);
        t.add_row({fmt(d), fmt(k), fmt(mult), fmt(bounds[0].value, 6),
                   fmt(bounds[1].value, 6), fmt(bounds[2].value, 6),
                   fmt(best_slab_bound(torus, p).value, 6),
                   fmt(odr_loads(torus, p).max_load(), 6),
                   fmt(udr_loads(torus, p).max_load(), 6)});
      }
  save_csv(dir + "/bounds.csv", t);
}

void export_bisection(const std::string& dir) {
  Table t({"d", "k", "placement", "dim_cut_links", "paper_4k",
           "sweep_array_wires", "sweep_bound", "sweep_directed",
           "corollary1_bound"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8}) {
      Torus torus(d, k);
      for (const Placement& p :
           {linear_placement(torus),
            random_placement(torus, torus.num_nodes() / 3, 5)}) {
        const auto cut = best_dimension_cut(torus, p);
        const auto sweep = hyperplane_sweep_bisection(torus, p);
        t.add_row({fmt(d), fmt(k), p.name(), fmt(cut.directed_edges),
                   fmt(uniform_bisection_width(k, d)),
                   fmt(sweep.array_crossings),
                   fmt(sweep_separator_upper_bound(k, d)),
                   fmt(sweep.directed_edges),
                   fmt(bisection_width_upper_bound(k, d))});
      }
    }
  save_csv(dir + "/bisection.csv", t);
}

void export_full_torus(const std::string& dir) {
  Table t({"d", "k", "full_size", "full_emax", "paper_lb",
           "full_ratio", "linear_ratio"});
  for (i32 d = 2; d <= 3; ++d)
    for (i32 k : {4, 6, 8}) {
      Torus torus(d, k);
      const Placement full = full_population(torus);
      const Placement lin = linear_placement(torus);
      const double fe = odr_loads(torus, full).max_load();
      const double le = odr_loads(torus, lin).max_load();
      t.add_row({fmt(d), fmt(k), fmt(full.size()), fmt(fe, 6),
                 fmt(full_torus_load_lower_bound(k, d), 6),
                 fmt(fe / static_cast<double>(full.size()), 6),
                 fmt(le / static_cast<double>(lin.size()), 6)});
    }
  save_csv(dir + "/full_torus.csv", t);
}

void export_fault(const std::string& dir) {
  Table t({"d", "k", "failed_wires", "odr_routable", "udr_routable"});
  OdrRouter odr;
  UdrRouter udr;
  for (const auto& [d, k] : std::vector<std::pair<i32, i32>>{{2, 8}, {3, 5}}) {
    Torus torus(d, k);
    const Placement p = linear_placement(torus);
    for (i64 f : {1, 2, 4, 8, 16}) {
      double odr_sum = 0.0, udr_sum = 0.0;
      const int samples = 5;
      for (int s = 0; s < samples; ++s) {
        const EdgeSet faults =
            sample_wire_faults(torus, f, static_cast<u64>(s));
        odr_sum += routable_pair_fraction(torus, p, odr, faults);
        udr_sum += routable_pair_fraction(torus, p, udr, faults);
      }
      t.add_row({fmt(d), fmt(k), fmt(f), fmt(odr_sum / samples, 6),
                 fmt(udr_sum / samples, 6)});
    }
  }
  save_csv(dir + "/fault.csv", t);
}

void export_saturation(const std::string& dir) {
  Table t({"rate", "linear_odr_latency", "linear_udr_latency",
           "full_odr_latency"});
  Torus torus(2, 8);
  const Placement lin = linear_placement(torus);
  const Placement full = full_population(torus);
  OdrRouter odr;
  UdrRouter udr;
  auto latency = [&](const Placement& p, const Router& r, double rate) {
    const auto traffic = random_rate_traffic(torus, p, r, rate, 400, 71);
    return NetworkSim(torus).run(traffic.messages).mean_latency;
  };
  for (double rate : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    t.add_row({fmt(rate, 2), fmt(latency(lin, odr, rate), 4),
               fmt(latency(lin, udr, rate), 4),
               fmt(latency(full, odr, rate), 4)});
  }
  save_csv(dir + "/saturation.csv", t);
}

void export_stats(const std::string& dir,
                  const std::vector<std::string>& inputs) {
  save_csv(dir + "/stats.csv", merge_stats_dumps(inputs));
}

}  // namespace
}  // namespace tp

int main(int argc, char** argv) {
  std::string dir = "results";
  bool dir_set = false;
  std::vector<std::string> stats_inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stats-json") {
      if (i + 1 < argc) stats_inputs.push_back(argv[++i]);
    } else if (arg.size() > 5 &&
               arg.compare(arg.size() - 5, 5, ".json") == 0) {
      stats_inputs.push_back(arg);
    } else if (!dir_set) {
      dir = arg;
      dir_set = true;
    }
  }
  std::filesystem::create_directories(dir);
  try {
    tp::export_odr_linear(dir);
    tp::export_udr_linear(dir);
    tp::export_multiple_odr(dir);
    tp::export_bounds(dir);
    tp::export_bisection(dir);
    tp::export_full_torus(dir);
    tp::export_fault(dir);
    tp::export_saturation(dir);
    if (!stats_inputs.empty()) tp::export_stats(dir, stats_inputs);
  } catch (const tp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "wrote " << (8 + (stats_inputs.empty() ? 0 : 1))
            << " CSV files to " << dir << "/\n";
  return 0;
}
