// torusplace — command-line interface to the library.
//
//   torusplace analyze   --d 3 --k 8 --t 1 --router odr
//       plan + exact loads + all lower bounds for a design
//   torusplace bisect    --d 3 --k 8 --t 1
//       Theorem 1 cut, hyperplane sweep, and (tiny tori) the exact optimum
//   torusplace routes    --d 3 --k 5 --src 0,0,0 --dst 2,3,1 --router udr
//       enumerate the path set C_{p->q} of a pair
//   torusplace simulate  --d 2 --k 8 --t 1 --router udr --faults 4 --flits 2
//       cycle-accurate complete exchange on the (possibly degraded) network
//   torusplace verify    --d 2 --ks 4,6,8,10 --router odr
//       certify linear load across a k sweep (the optimality criterion)
//   torusplace deadlock  --d 2 --k 4 --router udr
//       channel-dependency-graph analysis with and without datelines
//   torusplace sweep     --d 3 --ks 4,6,8 --router odr
//       E_max table across k with the paper's formulas
//   torusplace batch     requests.jsonl --threads 8
//       answer a JSONL request file through the query engine
//   torusplace serve     --stdio | --tcp <addr:port>
//       JSONL request/response server (stdin/stdout pipe or concurrent
//       TCP front-end); answers the admin ops (statusz/metricsz/cachez/
//       slowz/quitz) inline, drains gracefully on SIGTERM/quitz, and
//       dumps the slow-query log to stderr on shutdown
//   torusplace loadgen   --connect <addr:port> --mode closed --clients 32
//       open-/closed-loop traffic driver against serve --tcp: QPS,
//       p50/p99/p999, error/timeout counts, uniform/zipf key skew
//   torusplace version
//       build provenance (version, git describe, compiler, flags)

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/grid_render.h"
#include "src/analysis/table.h"
#include "src/core/torusplace.h"
#include "src/net/loadgen.h"
#include "src/net/socket.h"
#include "src/net/tcp_server.h"
#include "src/obs/obs.h"
#include "src/routing/deadlock.h"
#include "src/service/service.h"
#include "src/util/build_info.h"
#include "src/util/checked_io.h"
#include "src/util/parallel.h"
#include "tools/cli_args.h"

namespace tp::cli {
namespace {

RouterKind parse_router(const std::string& s) {
  if (s == "udr") return RouterKind::Udr;
  if (s == "adaptive") return RouterKind::Adaptive;
  if (s == "odr" || s.empty()) return RouterKind::Odr;
  throw Error("unknown router '" + s + "' (odr|udr|adaptive)");
}

std::vector<i32> parse_int_list(const std::string& s) {
  std::vector<i32> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    out.push_back(static_cast<i32>(std::strtol(item.c_str(), nullptr, 10)));
  return out;
}

Coord parse_coord(const std::string& s) {
  const auto ints = parse_int_list(s);
  Coord c;
  for (i32 v : ints) c.push_back(v);
  return c;
}

std::vector<double> parse_double_list(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    TP_REQUIRE(end != item.c_str() && *end == '\0',
               "not a number: '" + item + "'");
    out.push_back(v);
  }
  return out;
}

/// Engine configuration shared by every command that routes through the
/// query service (analyze, sweep, batch, serve).
service::EngineConfig engine_config(const Args& args) {
  service::EngineConfig config;
  config.threads = static_cast<i32>(args.get_int("threads", 0));
  config.measure_threads =
      static_cast<i32>(args.get_int("measure-threads", 1));
  config.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache", 1024));
  config.default_deadline_ms = args.get_int("deadline-ms", 0);
  config.slow_log_capacity =
      static_cast<std::size_t>(args.get_int("slow-log", 16));
  config.use_table_router = args.has("router-table");
  // Durability (docs/durability.md): --cache-file names the snapshot,
  // --cache-load warms the boot, --cache-save[=ms] arms the shutdown save
  // (and, with a value, periodic background saves during serve).
  config.snapshot_path = args.get("cache-file");
  config.snapshot_load = args.has("cache-load");
  config.snapshot_save = args.has("cache-save");
  if (config.snapshot_save)
    config.snapshot_interval_ms = args.get_int("cache-save", 0);
  if ((config.snapshot_load || config.snapshot_save) &&
      config.snapshot_path.empty())
    throw UsageError("--cache-load/--cache-save need --cache-file <path>");
  return config;
}

/// Boot-time cache report (stderr, so JSONL/table stdout stays clean).
/// Silent unless a warm-up was requested; a refused snapshot reports the
/// structured reason and the run continues cold.
void report_snapshot_boot(const service::Engine& engine, std::ostream& err) {
  const service::SnapshotStatus snap = engine.snapshot_status();
  if (!snap.load_attempted) return;
  if (snap.load_outcome == "warm")
    err << "cache: warm boot, " << snap.warm_entries << " entr(ies) from "
        << engine.config().snapshot_path << "\n";
  else
    err << "cache: cold boot (" << snap.load_outcome << ")\n";
}

/// Explicit end-of-run snapshot for --cache-save (the Engine destructor
/// would also save, but saving here lets the outcome be reported).
void final_snapshot_save(service::Engine& engine, std::ostream& err) {
  if (!engine.config().snapshot_save) return;
  const bool ok = engine.save_snapshot();
  const service::SnapshotStatus snap = engine.snapshot_status();
  if (ok)
    err << "cache: saved " << snap.last_save_entries << " entr(ies) to "
        << engine.config().snapshot_path << "\n";
  else
    err << "cache: snapshot save failed (" << snap.last_save_outcome << ")\n";
}

/// Human-readable slow-query dump (stderr, so JSONL stdout stays clean).
void dump_slow_queries(const service::Engine& engine, std::ostream& err) {
  const auto slowest = engine.slowest_requests();
  if (!slowest.empty()) {
    err << "slowest requests:\n";
    for (const service::RequestSpan& s : slowest)
      err << "  " << s.request_id << " " << s.key << " "
          << service::span_outcome_name(s.outcome) << " total=" << s.total_us
          << "us queue=" << s.queue_us << "us compute=" << s.compute_us
          << "us fanin=" << s.fanin << "\n";
  }
  const auto failures = engine.recent_failures();
  if (!failures.empty()) {
    err << "recent failures:\n";
    for (const service::RequestSpan& s : failures)
      err << "  " << s.request_id << " " << s.key << " "
          << service::span_outcome_name(s.outcome) << " total=" << s.total_us
          << "us\n";
  }
}

int cmd_analyze(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 3));
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const i32 t = static_cast<i32>(args.get_int("t", 1));
  const RouterKind kind = parse_router(args.get("router"));
  Torus torus(d, k);

  if (!args.has("placement")) {
    // The default design (multiple linear placement) is exactly what the
    // query engine serves: one Analyze query — plan + exact loads +
    // bounds — sharing the PlanCache/obs machinery with batch and sweep.
    service::Engine engine(engine_config(args));
    service::Request req;
    req.key = service::make_query_key(torus.radices(), t, kind,
                                      service::QueryOp::Analyze);
    const service::Response resp = engine.run(req);
    if (!resp.ok) throw Error(resp.error);
    const service::QueryResult& r = *resp.result;

    std::cout << r.placement_name << " + " << r.router_name << " on T_" << k
              << "^" << d << ", |P| = " << r.placement_size << "\n\n";

    Table table({"quantity", "value"});
    table.add_row({"measured E_max", fmt(r.measured_emax)});
    table.add_row({"E_max / |P|",
                   fmt(r.measured_emax /
                       static_cast<double>(r.placement_size))});
    table.add_row({"mean link load", fmt(r.mean_load)});
    table.add_row({"loaded links",
                   fmt(static_cast<long long>(r.loaded_links))});
    table.print(std::cout);

    std::cout << "\nlower bounds:\n";
    Table bounds({"bound", "value", "applicable", "note"});
    for (const BoundValue& b : r.bound_table)
      bounds.add_row({b.name, fmt(b.value), fmt_bool(b.applicable), b.note});
    if (r.has_slab)
      bounds.add_row({"slab search", fmt(r.slab.value), "yes",
                      "dim " + std::to_string(r.slab.dim) + ", layers [" +
                          std::to_string(r.slab.lo) + "," +
                          std::to_string(r.slab.lo + r.slab.len) + ")"});
    bounds.print(std::cout);

    if (d == 2 && k <= 12) {
      // The grid render needs the Placement object; rebuild the (cheap,
      // deterministic) default design for it.
      std::cout << "\n"
                << render_loads(torus, multiple_linear_placement(torus, t),
                                *r.loads);
    }
    engine.publish_stats();
    return 0;
  }

  // Custom placement spec: not a cacheable (d, k, t, router) design, so
  // compute directly.
  const Placement placement = make_placement(torus, args.get("placement"));
  std::cout << placement.name() << " + " << make_router(kind)->name()
            << " on T_" << k << "^" << d << ", |P| = " << placement.size()
            << "\n\n";

  const LoadMap loads =
      measure_loads(torus, placement, kind, 1, args.has("router-table"));
  Table table({"quantity", "value"});
  table.add_row({"measured E_max", fmt(loads.max_load())});
  table.add_row({"E_max / |P|", fmt(loads.max_load() /
                                    static_cast<double>(placement.size()))});
  table.add_row({"mean link load", fmt(loads.mean_load())});
  table.add_row({"loaded links",
                 fmt(static_cast<long long>(loads.num_loaded_edges()))});
  table.print(std::cout);

  std::cout << "\nlower bounds:\n";
  Table bounds({"bound", "value", "applicable", "note"});
  for (const BoundValue& b : all_bounds(torus, placement))
    bounds.add_row({b.name, fmt(b.value), fmt_bool(b.applicable), b.note});
  if (placement.size() >= 2) {
    const SlabBound slab = best_slab_bound(torus, placement);
    bounds.add_row({"slab search", fmt(slab.value), "yes",
                    "dim " + std::to_string(slab.dim) + ", layers [" +
                        std::to_string(slab.lo) + "," +
                        std::to_string(slab.lo + slab.len) + ")"});
  }
  bounds.print(std::cout);

  if (d == 2 && k <= 12) {
    std::cout << "\n" << render_loads(torus, placement, loads);
  }
  return 0;
}

int cmd_render(const Args& args) {
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const RouterKind kind = parse_router(args.get("router"));
  Torus torus(2, k);
  const Placement placement =
      make_placement(torus, args.get("placement", "linear"));
  std::cout << placement.name() << " on T_" << k << "^2:\n\n"
            << render_placement(torus, placement) << "\n";
  if (args.has("measured")) {
    // Heat map from a cycle-accurate run instead of the analytic E(l):
    // run the complete exchange with a link probe attached and render the
    // per-link forward counts.
    const auto router = make_router(kind);
    const auto traffic = complete_exchange_traffic(
        torus, placement, *router,
        static_cast<u64>(args.get_int("seed", 1)));
    obs::LinkProbe probe(torus.num_directed_edges(), torus.dims());
    SimConfig config;
    config.probe = &probe;
    NetworkSim sim(torus, nullptr, config);
    sim.run(traffic.messages);
    std::cout << "measured loads under " << router->name()
              << " (cycle-accurate run):\n\n"
              << render_loads(torus, placement,
                              probe_load_map(torus, probe));
  } else {
    const LoadMap loads = measure_loads(torus, placement, kind);
    std::cout << "loads under " << make_router(kind)->name() << ":\n\n"
              << render_loads(torus, placement, loads);
  }
  return 0;
}

int cmd_save(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const std::string out = args.get("out");
  TP_REQUIRE(!out.empty(), "save needs --out <path>");
  Torus torus(d, k);
  const Placement placement =
      make_placement(torus, args.get("placement", "linear"));
  save_placement(out, torus, placement);
  std::cout << "wrote " << placement.size() << " processors ("
            << placement.name() << ") to " << out << "\n";
  return 0;
}

int cmd_optimize(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 4));
  const i64 size = args.get_int("size", powi(k, d - 1));
  const RouterKind kind = parse_router(args.get("router"));
  const i64 iters = args.get_int("iters", 2000);
  Torus torus(d, k);

  const double linear =
      torus.is_uniform_radix() && size == powi(k, d - 1)
          ? measure_loads(torus, linear_placement(torus), kind).max_load()
          : -1.0;

  SearchResult result =
      binomial(torus.num_nodes(), size) <= 200000
          ? exhaustive_best_placement(torus, size, kind)
          : anneal_placement(torus, size, kind, iters,
                             static_cast<u64>(args.get_int("seed", 17)));
  std::cout << "searched " << result.evaluated << " placements of size "
            << size << " on T_" << k << "^" << d << " ("
            << make_router(kind)->name() << ")\n";
  std::cout << "best E_max = " << result.emax;
  if (linear >= 0.0) std::cout << "  (linear placement: " << linear << ")";
  std::cout << "\nbest placement:";
  for (NodeId n : result.placement.nodes())
    std::cout << " " << torus.node_str(n);
  std::cout << "\n";
  return 0;
}

int cmd_profile(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 3));
  const i32 k = static_cast<i32>(args.get_int("k", 6));
  const RouterKind kind = parse_router(args.get("router"));
  Torus torus(d, k);
  const Placement placement =
      make_placement(torus, args.get("placement", "linear"));
  const LoadMap loads = measure_loads(torus, placement, kind);

  Table table({"dim", "dir", "max load", "mean load", "total"});
  for (const DirectionProfile& prof : load_profile(torus, loads))
    table.add_row({fmt(prof.dim), prof.dir == Dir::Pos ? "+" : "-",
                   fmt(prof.max_load), fmt(prof.mean_load),
                   fmt(prof.total_load)});
  table.print(std::cout);
  std::cout << "\ndirection asymmetry (+/-):";
  for (i32 dim = 0; dim < d; ++dim)
    std::cout << "  dim " << dim << ": "
              << fmt(direction_asymmetry(torus, loads, dim), 3);
  std::cout << "\n";
  return 0;
}

int cmd_tables(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 6));
  Torus torus(d, k);
  const Placement placement =
      make_placement(torus, args.get("placement", "linear"));
  Table table({"router", "table entries", "worst node", "per pair paths"});
  for (RouterKind kind :
       {RouterKind::Odr, RouterKind::Udr, RouterKind::Adaptive}) {
    const auto router = make_router(kind);
    RoutingTable rt(torus, placement, *router);
    rt.verify(torus);
    // Representative path count: the farthest pair.
    NodeId far_a = placement.nodes().front(), far_b = far_a;
    i64 far_dist = 0;
    for (NodeId a : placement.nodes())
      for (NodeId b : placement.nodes())
        if (torus.lee_distance(a, b) > far_dist) {
          far_dist = torus.lee_distance(a, b);
          far_a = a;
          far_b = b;
        }
    table.add_row({router->name(), fmt(rt.num_entries()),
                   fmt(rt.max_entries_per_node()),
                   fmt(router->num_paths(torus, far_a, far_b))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_bisect(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 3));
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const i32 t = static_cast<i32>(args.get_int("t", 1));
  Torus torus(d, k);
  const Placement p = multiple_linear_placement(torus, t);

  const auto cut = best_dimension_cut(torus, p);
  std::cout << "Theorem 1 dimension cut: dim " << cut.dim << ", boundaries "
            << cut.first_boundary << "|" << cut.first_boundary + 1 << " and "
            << cut.second_boundary << "|"
            << (cut.second_boundary + 1) % k << ", " << cut.directed_edges
            << " directed links (paper: " << uniform_bisection_width(k, d)
            << "), imbalance " << cut.imbalance << "\n";

  const auto sweep = hyperplane_sweep_bisection(torus, p);
  std::cout << "Hyperplane sweep (gamma = "
            << static_cast<double>(sweep.gamma) << "): "
            << sweep.array_crossings << " array + " << sweep.wrap_crossings
            << " wrap wires crossed, " << sweep.directed_edges
            << " directed links (bounds: " << sweep_separator_upper_bound(k, d)
            << " array wires, " << bisection_width_upper_bound(k, d)
            << " directed links)\n";

  if (torus.num_nodes() <= 24) {
    const auto exact = exact_bisection(torus, p);
    std::cout << "Exact optimum (brute force): " << exact.directed_edges
              << " directed links\n";
  }
  return 0;
}

int cmd_routes(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 3));
  const i32 k = static_cast<i32>(args.get_int("k", 5));
  const RouterKind kind = parse_router(args.get("router", "udr"));
  Torus torus(d, k);
  const NodeId src = torus.node_id(parse_coord(args.get("src", "0,0,0")));
  const NodeId dst = torus.node_id(parse_coord(args.get("dst", "1,2,3")));
  const auto router = make_router(kind);

  std::cout << router->name() << " paths " << torus.node_str(src) << " -> "
            << torus.node_str(dst) << " (Lee distance "
            << torus.lee_distance(src, dst) << "):\n";
  const auto paths = router->paths(torus, src, dst);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::cout << "  " << i + 1 << ": ";
    const auto nodes = paths[i].nodes(torus);
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (j > 0) std::cout << " -> ";
      std::cout << torus.node_str(nodes[j]);
    }
    std::cout << "\n";
  }
  std::cout << paths.size() << " path(s)\n";
  return 0;
}

int cmd_simulate(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const i32 t = static_cast<i32>(args.get_int("t", 1));
  const i64 n_faults = args.get_int("faults", 0);
  const i64 flits = args.get_int("flits", 1);
  const u64 seed = static_cast<u64>(args.get_int("seed", 1));
  const RouterKind kind = parse_router(args.get("router"));
  const std::string link_json = args.get("link-json");
  const bool want_links = args.has("link-stats") || !link_json.empty();
  const i64 top_n = args.get_int("link-stats", 10);

  // Phase spans: plan (design construction) -> route (path assignment)
  // -> sim (cycle-accurate execution).
  std::optional<obs::Scope> phase;
  phase.emplace("plan");
  Torus torus(d, k);
  const Placement p = multiple_linear_placement(torus, t);
  const auto router = make_router(kind);
  const EdgeSet faults = sample_wire_faults(torus, n_faults, seed);
  phase.reset();

  phase.emplace("route");
  const auto traffic = complete_exchange_traffic(
      torus, p, *router, seed, n_faults > 0 ? &faults : nullptr);
  phase.reset();

  std::optional<obs::LinkProbe> probe;
  if (want_links) probe.emplace(torus.num_directed_edges(), torus.dims());
  SimConfig config;
  config.flits_per_message = flits;
  config.probe = probe ? &*probe : nullptr;
  NetworkSim sim(torus, n_faults > 0 ? &faults : nullptr, config);
  phase.emplace("sim");
  const SimMetrics m = sim.run(traffic.messages);
  phase.reset();

  Table table({"metric", "value"});
  table.add_row({"processors", fmt(static_cast<long long>(p.size()))});
  table.add_row({"messages injected", fmt(static_cast<long long>(m.injected))});
  table.add_row({"delivered", fmt(static_cast<long long>(m.delivered))});
  table.add_row({"unroutable pairs",
                 fmt(static_cast<long long>(traffic.unroutable_pairs))});
  table.add_row({"makespan (cycles)", fmt(static_cast<long long>(m.cycles))});
  table.add_row({"mean latency", fmt(m.mean_latency)});
  table.add_row({"latency p50", fmt(m.latency_p50())});
  table.add_row({"latency p95", fmt(m.latency_p95())});
  table.add_row({"latency max",
                 fmt(static_cast<long long>(m.latency_max()))});
  table.add_row({"peak queue depth",
                 fmt(static_cast<long long>(m.max_queue_depth))});
  table.add_row({"busiest link forwards",
                 fmt(static_cast<long long>(m.max_link_forwards))});
  table.add_row({"bottleneck utilization", fmt(m.bottleneck_utilization())});
  table.print(std::cout);

  if (probe) {
    // `forwards` counts messages (the link stays busy `flits` cycles per
    // message), so it is directly comparable to the unit-load E(l).
    const LoadMap measured = probe_load_map(torus, *probe);
    const ImbalanceReport report =
        analyze_imbalance(torus, measured, static_cast<std::size_t>(top_n));
    std::cout << "\nhotspots (measured load = messages forwarded):\n";
    hotspot_table(report).print(std::cout);
    std::cout << "load distribution: mean " << fmt(report.mean_load)
              << ", max " << fmt(report.max_load) << ", CoV "
              << fmt(report.cov) << ", max/mean " << fmt(report.max_to_mean)
              << ", loaded links " << report.loaded_links << "/"
              << report.total_links << "\n";

    if (n_faults == 0) {
      // The analytic map describes the fault-free complete exchange; under
      // faults the traffic itself differs, so skip the comparison there.
      const LoadMap predicted = measure_loads(torus, p, kind);
      const auto residuals = load_residuals(torus, measured, predicted,
                                            static_cast<std::size_t>(top_n));
      if (residuals.empty()) {
        std::cout << "\nmeasured forwards match the analytic E(l) on every "
                     "link\n";
      } else {
        std::cout << "\nlargest measured-vs-predicted E(l) residuals (UDR "
                     "samples one path per pair; the analytic map averages "
                     "over all):\n";
        residual_table(residuals).print(std::cout);
      }
    }

    if (!link_json.empty()) {
      obs::LinkExportMeta meta;
      meta.run = "simulate T_" + std::to_string(k) + "^" + std::to_string(d) +
                 " " + router->name();
      meta.cycles = m.cycles;
      meta.flits_per_message = flits;
      meta.edge_labels.reserve(
          static_cast<std::size_t>(torus.num_directed_edges()));
      for (EdgeId e = 0; e < torus.num_directed_edges(); ++e)
        meta.edge_labels.push_back(torus.edge_str(e));
      obs::export_link_jsonl(*probe, meta, link_json);
      std::cout << "\nwrote link telemetry to " << link_json << "\n";
    }
  }
  return 0;
}

int cmd_resilience(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 8));
  const i32 t = static_cast<i32>(args.get_int("t", 1));
  const u64 seed = static_cast<u64>(args.get_int("seed", 1));
  const auto rates =
      parse_double_list(args.get("rates", "0,0.0002,0.0005,0.001,0.002"));
  const std::string json_path = args.get("json");
  const i64 top_n = args.get_int("criticality", 10);

  ResilienceConfig config;
  config.traffic_seed = seed;
  config.schedule_seed = seed * 2 + 5;
  config.recovery_seed = seed * 3 + 7;
  config.max_retries = args.get_int("retries", 8);
  config.backoff_base = args.get_int("backoff", 1);
  config.repair_prob = args.has("repair")
                           ? parse_double_list(args.get("repair")).at(0)
                           : 0.0;
  config.horizon = args.get_int("horizon", 0);

  std::optional<obs::Scope> phase;
  phase.emplace("plan");
  Torus torus(d, k);
  const Placement p = multiple_linear_placement(torus, t);
  phase.reset();

  std::cout << p.name() << " on T_" << k << "^" << d << ", |P| = "
            << p.size() << ", repair_prob = " << fmt(config.repair_prob)
            << ", retries = " << config.max_retries << "\n\n";

  // --checkpoint=dir: one journal cell per (router, rate) plus one per
  // router's derived fault horizon, computed exactly as resilience_sweep
  // would (resilience_horizon + the same bernoulli schedule), so a
  // resumed curve is byte-identical to an uninterrupted one.
  std::optional<service::CheckpointJournal> journal;
  const std::string checkpoint_dir = args.get("checkpoint");
  if (!checkpoint_dir.empty()) {
    std::string run_key = "resilience/1 " + service::snapshot_build_key() +
                          " d=" + std::to_string(d) +
                          " k=" + std::to_string(k) +
                          " t=" + std::to_string(t) +
                          " seed=" + std::to_string(seed) + " rates=";
    for (double rate : rates) run_key += fmt(rate, 6) + ",";
    run_key += " repair=" + fmt(config.repair_prob, 6) +
               " retries=" + std::to_string(config.max_retries) +
               " backoff=" + std::to_string(config.backoff_base) +
               " horizon=" + std::to_string(config.horizon);
    journal.emplace(checkpoint_dir, "resilience", run_key);
  }
  i64 computed = 0;

  // Degradation curves: fault rate x router.
  phase.emplace("sweep");
  std::vector<DegradationReport> all;
  Table table({"router", "fault rate", "delivered", "dropped",
               "delivered fraction", "makespan", "inflation",
               "degraded E_max", "retries", "reroutes"});
  for (RouterKind kind :
       {RouterKind::Odr, RouterKind::Udr, RouterKind::Adaptive}) {
    const auto router = make_router(kind);
    std::vector<DegradationReport> curve;
    if (!journal) {
      curve = resilience_sweep(torus, p, *router, rates, config);
    } else {
      // Per-cell replica of resilience_sweep: the horizon derivation is
      // itself a cell (it costs a fault-free simulation), then each rate
      // is one cell.
      const std::string horizon_cell = std::string(router->name()) +
                                       " horizon";
      i64 horizon = 0;
      if (const std::string* payload = journal->find(horizon_cell)) {
        util::ByteView view(*payload);
        horizon = view.get_i64();
      } else {
        horizon = resilience_horizon(torus, p, *router, config);
        util::ByteBuffer buf;
        buf.put_i64(horizon);
        journal->record(horizon_cell, buf.data());
        ++computed;
      }
      for (std::size_t i = 0; i < rates.size(); ++i) {
        const std::string cell = std::string(router->name()) + " rate[" +
                                 std::to_string(i) + "]";
        if (const std::string* payload = journal->find(cell)) {
          curve.push_back(decode_degradation_report(*payload));
          continue;
        }
        const FaultSchedule schedule =
            FaultSchedule::bernoulli(torus, rates[i], config.repair_prob,
                                     horizon, config.schedule_seed);
        DegradationReport r =
            degradation_report(torus, p, *router, schedule, config);
        r.fault_rate = rates[i];
        journal->record(cell, encode_degradation_report(r));
        ++computed;
        curve.push_back(std::move(r));
      }
    }
    for (const DegradationReport& r : curve) {
      table.add_row({r.router_name, fmt(r.fault_rate, 4),
                     fmt(static_cast<long long>(r.delivered)),
                     fmt(static_cast<long long>(r.dropped)),
                     fmt(r.delivered_fraction),
                     fmt(static_cast<long long>(r.cycles)),
                     fmt(r.completion_inflation), fmt(r.degraded_emax),
                     fmt(static_cast<long long>(r.retries)),
                     fmt(static_cast<long long>(r.rerouted))});
      all.push_back(r);
    }
  }
  phase.reset();
  table.print(std::cout);
  if (journal)
    std::cerr << "checkpoint: resumed " << journal->resumed_cells()
              << " completed cell(s), computed " << computed << " ("
              << journal->path() << ")\n";

  if (args.has("criticality")) {
    // Per-wire criticality under the selected router (default odr, the
    // fragile end of the spectrum).
    const RouterKind kind = parse_router(args.get("router"));
    const auto router = make_router(kind);
    const i32 threads =
        static_cast<i32>(args.get_int("threads", default_threads()));
    phase.emplace("criticality");
    const auto ranking = wire_criticality(torus, p, *router, config, threads);
    phase.reset();
    std::cout << "\nmost critical wires under " << router->name()
              << " (single permanent wire fault each):\n";
    Table crit({"wire", "delivered fraction", "dropped", "reroutes"});
    const std::size_t rows =
        std::min(ranking.size(), static_cast<std::size_t>(top_n));
    for (std::size_t i = 0; i < rows; ++i)
      crit.add_row({torus.edge_str(ranking[i].wire),
                    fmt(ranking[i].delivered_fraction),
                    fmt(static_cast<long long>(ranking[i].dropped)),
                    fmt(static_cast<long long>(ranking[i].rerouted))});
    crit.print(std::cout);
  }

  if (!json_path.empty()) {
    export_resilience_jsonl(all, json_path);
    std::cout << "\nwrote degradation curves to " << json_path << "\n";
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const auto ks = parse_int_list(args.get("ks", "4,6,8,10"));
  const RouterKind kind = parse_router(args.get("router"));
  const i32 t = static_cast<i32>(args.get_int("t", 1));

  const auto family = [t](const Torus& torus) {
    return multiple_linear_placement(torus, t);
  };
  const VerificationReport report = verify_linear_load(d, ks, family, kind);

  std::cout << "family " << report.family_name << " with "
            << report.router_name << ", d = " << d << ":\n\n";
  Table table({"k", "|P|", "E_max", "E_max/|P|"});
  for (const ScalingPoint& pt : report.points)
    table.add_row({fmt(static_cast<long long>(pt.k)),
                   fmt(static_cast<long long>(pt.placement_size)),
                   fmt(pt.emax),
                   fmt(pt.emax / static_cast<double>(pt.placement_size))});
  table.print(std::cout);
  std::cout << "\nfitted c1 = " << report.c1 << ", linear load: "
            << (report.linear ? "CERTIFIED" : "VIOLATED") << "\n";
  return report.linear ? 0 : 2;
}

int cmd_deadlock(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 2));
  const i32 k = static_cast<i32>(args.get_int("k", 4));
  const RouterKind kind = parse_router(args.get("router"));
  Torus torus(d, k);
  const Placement p = full_population(torus);
  const auto router = make_router(kind);

  const ChannelGraph physical = physical_channel_graph(torus, p, *router);
  const ChannelGraph dateline = dateline_channel_graph(torus, p, *router);
  Table table({"channel model", "channels", "dependencies", "cyclic"});
  table.add_row({"physical", fmt(static_cast<long long>(physical.adj.size())),
                 fmt(static_cast<long long>(physical.num_dependencies())),
                 fmt_bool(has_cycle(physical))});
  table.add_row({"2 VCs + dateline",
                 fmt(static_cast<long long>(dateline.adj.size())),
                 fmt(static_cast<long long>(dateline.num_dependencies())),
                 fmt_bool(has_cycle(dateline))});
  table.print(std::cout);
  std::cout << "\n" << router->name() << " is "
            << (has_cycle(dateline) ? "NOT " : "")
            << "deadlock-free under the dateline scheme\n";
  return 0;
}

int cmd_sweep(const Args& args) {
  const i32 d = static_cast<i32>(args.get_int("d", 3));
  const auto ks = parse_int_list(args.get("ks", "4,6,8"));
  const RouterKind kind = parse_router(args.get("router"));
  const i32 t = static_cast<i32>(args.get_int("t", 1));

  // Every cell goes through the query engine: repeated (d, k, t, router)
  // cells coalesce onto one computation / hit the cache instead of being
  // re-planned, and distinct cells compute concurrently on the pool.
  // --stats-json reports the dedup (service.cache_hits / coalesced).
  service::Engine engine(engine_config(args));
  report_snapshot_boot(engine, std::cerr);

  // --checkpoint=dir: journal each completed cell so a killed run resumes
  // from the last completed cell.  Results round-trip bit-exactly
  // (snapshot.h), so a resumed table is byte-identical to an
  // uninterrupted one.  The run key pins the full parameterization plus
  // the build, refusing a journal from a different run.
  std::optional<service::CheckpointJournal> journal;
  const std::string checkpoint_dir = args.get("checkpoint");
  if (!checkpoint_dir.empty()) {
    std::string ks_text;
    for (i32 k : ks) ks_text += std::to_string(k) + ",";
    journal.emplace(checkpoint_dir, "sweep",
                    "sweep/1 " + service::snapshot_build_key() + " d=" +
                        std::to_string(d) + " ks=" + ks_text +
                        " t=" + std::to_string(t) + " router=" +
                        service::router_name_short(kind));
  }

  std::vector<service::QueryKey> keys;
  std::vector<std::optional<service::Engine::Ticket>> tickets(ks.size());
  keys.reserve(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) {
    keys.push_back(service::make_query_key(Torus(d, ks[i]).radices(), t,
                                           kind, service::QueryOp::Load));
    if (journal && journal->find(keys[i].str()) != nullptr)
      continue;  // already completed by a previous (killed) run
    service::Request req;
    req.key = keys[i];
    tickets[i] = engine.submit(req);
  }

  i64 computed = 0;
  Table table({"k", "|P|", "E_max", "E_max/|P|", "best lower bound",
               "paper prediction"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::shared_ptr<const service::QueryResult> result;
    if (tickets[i]) {
      const service::Response resp = tickets[i]->wait();
      if (!resp.ok) throw Error(resp.error);
      result = resp.result;
      if (journal) {
        journal->record(keys[i].str(),
                        service::encode_query_result(*result));
        ++computed;
      }
    } else {
      result = std::make_shared<const service::QueryResult>(
          service::decode_query_result(*journal->find(keys[i].str())));
    }
    const service::QueryResult& r = *result;
    table.add_row({fmt(static_cast<long long>(ks[i])),
                   fmt(static_cast<long long>(r.placement_size)),
                   fmt(r.measured_emax),
                   fmt(r.measured_emax /
                       static_cast<double>(r.placement_size)),
                   fmt(r.lower_bound),
                   (r.prediction_exact ? "= " : "<= ") +
                       fmt(r.predicted_emax)});
  }
  table.print(std::cout);
  if (journal)
    std::cerr << "checkpoint: resumed " << journal->resumed_cells()
              << " completed cell(s), computed " << computed << " ("
              << journal->path() << ")\n";
  engine.publish_stats();
  final_snapshot_save(engine, std::cerr);
  return 0;
}

int cmd_batch(const Args& args) {
  std::string path = args.get("in");
  if (path.empty() && !args.positional().empty())
    path = args.positional().front();
  TP_REQUIRE(!path.empty(), "batch needs a <requests.jsonl> file (or --in)");
  std::ifstream in(path);
  TP_REQUIRE(in.good(), "cannot open '" + path + "'");

  service::Engine engine(engine_config(args));
  report_snapshot_boot(engine, std::cerr);
  i64 n = 0;
  const std::string out_path = args.get("out");
  if (out_path.empty()) {
    n = service::run_batch(engine, in, std::cout);
  } else {
    std::ofstream out(out_path);
    TP_REQUIRE(out.good(), "cannot write '" + out_path + "'");
    n = service::run_batch(engine, in, out);
  }
  engine.publish_stats();
  // Responses own stdout (JSONL); the human-readable summary goes to
  // stderr so piped output stays parseable.
  const service::EngineStats s = engine.stats();
  std::cerr << "batch: " << n << " request(s), " << s.plans_computed
            << " plan(s) computed, " << s.cache_hits << " cache hit(s), "
            << s.coalesced << " coalesced, " << s.timeouts
            << " timeout(s), " << s.errors << " error(s)\n";
  final_snapshot_save(engine, std::cerr);
  return 0;
}

// SIGTERM/SIGINT graceful drain for serve.  --stdio: the handler closes
// stdin — async-signal-safe — so the JSONL loop sees end-of-input,
// finishes the requests already accepted, and falls through to the
// normal shutdown path (final snapshot included).  --tcp: the handler
// writes one byte to the server's drain-wakeup pipe instead (equally
// signal-safe), which stops the acceptor, stops reading every socket,
// and flushes all in-flight responses before closing.  sigaction is
// installed without SA_RESTART on purpose: a read blocked on the
// terminal must be interrupted, not transparently restarted.
std::atomic<int> g_shutdown_signal{0};
std::atomic<int> g_drain_fd{-1};

void handle_shutdown_signal(int sig) {
  g_shutdown_signal.store(sig);
  const int fd = g_drain_fd.load();
  if (fd >= 0) {
    const char byte = net::WakePipe::kDrain;
    [[maybe_unused]] const auto rc = ::write(fd, &byte, 1);
  } else {
    ::close(0);
  }
}

void install_shutdown_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Shared serve epilogue: registry fold, summary, slow-query dump, final
/// snapshot — identical for both transports.
void serve_epilogue(service::Engine& engine, i64 served) {
  if (const int sig = g_shutdown_signal.load(); sig != 0)
    std::cerr << "serve: graceful shutdown on signal " << sig << "\n";
  engine.publish_stats();
  const service::EngineStats s = engine.stats();
  std::cerr << "serve: " << served << " request(s), " << s.plans_computed
            << " plan(s) computed, " << s.cache_hits << " cache hit(s)\n";
  dump_slow_queries(engine, std::cerr);
  final_snapshot_save(engine, std::cerr);
}

int cmd_serve(const Args& args) {
  const bool stdio = args.has("stdio");
  const std::string tcp = args.get("tcp");
  if (stdio == !tcp.empty())
    throw UsageError(
        "serve needs exactly one transport: --stdio (JSONL over "
        "stdin/stdout) or --tcp <addr:port>");
  // A long-lived server always keeps the registry live so {"op":"metricsz"}
  // has something to report (batch/one-shot commands stay opt-in via
  // --stats-json / TP_OBS).
  obs::registry().set_enabled(true);
  service::Engine engine(engine_config(args));
  report_snapshot_boot(engine, std::cerr);

  if (stdio) {
    install_shutdown_handlers();
    const i64 n = service::run_serve(engine, std::cin, std::cout);
    serve_epilogue(engine, n);
    return 0;
  }

  const net::HostPort endpoint = net::parse_host_port(tcp);
  net::TcpServerConfig server_config;
  server_config.host = endpoint.host;
  server_config.port = endpoint.port;
  server_config.max_conns = args.get_int("max-conns", 64);
  server_config.max_line_bytes =
      static_cast<std::size_t>(args.get_int("max-line-bytes", 1 << 20));
  net::TcpServer server(engine, server_config);
  server.start();
  service::set_listener_status_provider(
      [&server] { return server.listener_status(); });
  g_drain_fd.store(server.drain_wakeup_fd());
  install_shutdown_handlers();
  std::cerr << "serve: listening on " << server.address() << "\n";
  // --port-file: publish the resolved endpoint (ephemeral --tcp :0 ports
  // included) for scripts that start the server in the background.
  const std::string port_file = args.get("port-file");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    TP_REQUIRE(out.good(), "cannot write '" + port_file + "'");
    out << server.address() << "\n";
  }

  server.wait_until_drained();
  g_drain_fd.store(-1);
  server.publish_stats();
  const net::TcpServerStats net_stats = server.stats();
  std::cerr << "serve: " << net_stats.accepted << " connection(s), "
            << net_stats.responses << " response(s), " << net_stats.rejected
            << " rejected connection(s)\n";
  serve_epilogue(engine, net_stats.requests);
  // The provider captures the server by reference; clear it before the
  // server leaves scope (statusz has no caller past this point, but the
  // contract is the provider must outlive its installation).
  service::set_listener_status_provider({});
  return 0;
}

int cmd_loadgen(const Args& args) {
  const std::string connect = args.get("connect");
  TP_REQUIRE(!connect.empty(),
             "loadgen needs --connect <addr:port> (a running "
             "`torusplace serve --tcp`)");
  const net::HostPort endpoint = net::parse_host_port(connect);
  TP_REQUIRE(endpoint.port != 0, "loadgen cannot connect to port 0");

  net::LoadgenConfig config;
  config.host = endpoint.host;
  config.port = endpoint.port;
  const std::string mode = args.get("mode", "closed");
  if (mode == "open")
    config.open_loop = true;
  else
    TP_REQUIRE(mode == "closed", "loadgen --mode must be open|closed");
  config.clients = static_cast<i32>(args.get_int("clients", 8));
  if (args.has("rate")) {
    char* end = nullptr;
    config.rate = std::strtod(args.get("rate").c_str(), &end);
    TP_REQUIRE(end != args.get("rate").c_str() && *end == '\0' &&
                   config.rate > 0.0,
               "--rate must be a positive number");
  }
  config.duration_ms = args.get_int("duration-ms", 5000);
  config.warmup_ms = args.get_int("warmup-ms", 1000);
  const std::string skew = args.get("skew", "uniform");
  if (skew == "zipf")
    config.zipf = true;
  else
    TP_REQUIRE(skew == "uniform", "loadgen --skew must be uniform|zipf");
  if (args.has("zipf-s")) {
    char* end = nullptr;
    config.zipf_s = std::strtod(args.get("zipf-s").c_str(), &end);
    TP_REQUIRE(end != args.get("zipf-s").c_str() && *end == '\0' &&
                   config.zipf_s > 0.0,
               "--zipf-s must be a positive number");
  }
  config.universe = args.get_int("universe", 64);
  config.seed = static_cast<u64>(args.get_int("seed", 1));
  config.deadline_ms = args.get_int("deadline-ms", 0);

  const net::LoadgenReport report = net::run_loadgen(config);
  net::print_report(report, config, std::cout);
  // --json <path>: append one JSONL record per run (benchstat-style
  // longitudinal tracking across runs).
  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::app);
    TP_REQUIRE(out.good(), "cannot write '" + json_path + "'");
    out << net::report_to_json(report, config).dump() << "\n";
  }
  // The report carries the outcome (errors/timeouts/torn); the exit code
  // stays 0 so scripted sweeps can collect degraded points too.
  return 0;
}

int cmd_version() {
  const BuildInfo& b = build_info();
  std::cout << "torusplace " << b.version << " (" << b.git_describe << ")\n"
            << "build: " << b.build_type << ", " << b.compiler << "\n"
            << "flags: " << b.flags << "\n";
  return 0;
}

int usage() {
  std::cout <<
      "torusplace — optimal placements in torus networks\n"
      "\n"
      "usage: torusplace <command> [options]\n"
      "\n"
      "commands:\n"
      "  analyze   loads + bounds for a design        (--d --k --t --router)\n"
      "  bisect    bisections w.r.t. the placement    (--d --k --t)\n"
      "  routes    enumerate C_{p->q} for a pair      (--d --k --src --dst --router)\n"
      "  simulate  cycle-accurate complete exchange   (--d --k --t --router --faults --flits --seed\n"
      "                                                --link-stats[=N] --link-json <path>)\n"
      "  resilience degradation under dynamic faults  (--d --k --t --rates --repair --retries\n"
      "                                                --backoff --horizon --seed --json <path>\n"
      "                                                --criticality[=N] --router --threads\n"
      "                                                --checkpoint <dir>)\n"
      "  verify    certify linear load over a k sweep (--d --ks --t --router)\n"
      "  deadlock  channel-dependency analysis        (--d --k --router)\n"
      "  sweep     E_max table across k               (--d --ks --t --router --threads --cache\n"
      "                                                --checkpoint <dir>)\n"
      "  batch     answer a JSONL request file        (<file> | --in <file>; --out <path>\n"
      "                                                --threads --cache --measure-threads\n"
      "                                                --deadline-ms)\n"
      "  serve     JSONL request/response server      (--stdio | --tcp <addr:port>;\n"
      "                                                --threads --cache --measure-threads\n"
      "                                                --deadline-ms --slow-log <N>;\n"
      "                                                TCP: --max-conns <N> --max-line-bytes <N>\n"
      "                                                --port-file <path>)\n"
      "  loadgen   drive a serve --tcp endpoint       (--connect <addr:port> --mode open|closed\n"
      "                                                --clients <N> --rate <req/s>\n"
      "                                                --duration-ms --warmup-ms\n"
      "                                                --skew uniform|zipf --zipf-s <s>\n"
      "                                                --universe <N> --seed --deadline-ms\n"
      "                                                --json <path>)\n"
      "  version   build provenance (version, git, compiler, flags)\n"
      "  tables    compiled routing-table statistics  (--d --k --placement)\n"
      "  optimize  search same-size placements        (--d --k --size --router --iters --seed)\n"
      "  profile   per-dimension/direction loads      (--d --k --placement --router)\n"
      "  render    draw a 2-D torus + loads           (--k --placement --router --measured)\n"
      "  save      write a placement file             (--d --k --placement --out)\n"
      "\n"
      "placements (--placement): linear[:c] multiple:t diagonal[:s] full\n"
      "  random:n[:seed] clustered:n subtorus:dim:v perfect_lee modular:m[:c]\n"
      "\n"
      "JSONL request schema (batch/serve), one object per line:\n"
      "  {\"id\":1, \"op\":\"plan|bounds|load|analyze\", \"d\":3, \"k\":8,\n"
      "   \"t\":1, \"router\":\"odr\", \"deadline_ms\":250}\n"
      "  (\"radices\":[4,6,8] instead of d/k for mixed-radix tori;\n"
      "   see docs/service.md for the full schema)\n"
      "  admin ops: {\"op\":\"statusz|metricsz|cachez|slowz|quitz\"}\n"
      "  (metricsz takes \"format\":\"json|prometheus\")\n"
      "\n"
      "global flags (all commands):\n"
      "  --stats-json <path>  dump counters/histograms as one JSON line\n"
      "  --trace <path>       write Chrome-trace phase spans + per-window\n"
      "                       counter tracks (Perfetto)\n"
      "  --profile[=<path>]   in-process profiler: phase cost table on\n"
      "                       stderr, optional collapsed-stack (flamegraph)\n"
      "                       file; `torusplace profile <command> ...` is\n"
      "                       shorthand for the same\n"
      "  --router-table       measure ODR loads via precompiled next-hop\n"
      "                       tables (identical results, different cost)\n"
      "\n"
      "link telemetry (simulate):\n"
      "  --link-stats[=N]     per-link probes: top-N hotspot table (default\n"
      "                       10), CoV/max-to-mean, measured-vs-predicted\n"
      "  --link-json <path>   per-link + per-window JSONL dump\n"
      "\n"
      "durability (docs/durability.md; analyze/sweep/batch/serve):\n"
      "  --cache-file <path>  PlanCache snapshot file (the build key from\n"
      "                       `torusplace version` is the compatibility key)\n"
      "  --cache-load         warm the cache from the snapshot at boot;\n"
      "                       corruption degrades to a cold cache\n"
      "  --cache-save[=ms]    snapshot on shutdown (incl. SIGTERM/quitz\n"
      "                       drain); with =ms also every ms milliseconds\n"
      "  --checkpoint <dir>   (sweep/resilience) journal completed cells;\n"
      "                       a killed run resumes from the last one\n"
      "\n"
      "networking (docs/networking.md; serve --tcp / loadgen):\n"
      "  --tcp <addr:port>    serve over TCP (port 0 = ephemeral; the\n"
      "                       bound address is printed to stderr and, with\n"
      "                       --port-file, written to a file)\n"
      "  --max-conns <N>      connection limit (default 64); connections\n"
      "                       beyond it get one structured refusal line\n"
      "  --max-line-bytes <N> request-line guard (default 1 MiB); longer\n"
      "                       lines are answered with a structured error\n"
      "                       and discarded, the connection survives\n"
      "  SIGTERM/quitz drain the server gracefully: accepted requests are\n"
      "  answered and flushed, never torn mid-line\n";
  return kExitUsage;
}

int dispatch(const std::string& cmd, const Args& args) {
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "bisect") return cmd_bisect(args);
  if (cmd == "routes") return cmd_routes(args);
  if (cmd == "simulate") return cmd_simulate(args);
  if (cmd == "resilience") return cmd_resilience(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "deadlock") return cmd_deadlock(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "batch") return cmd_batch(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "loadgen") return cmd_loadgen(args);
  if (cmd == "version") return cmd_version();
  if (cmd == "tables") return cmd_tables(args);
  if (cmd == "optimize") return cmd_optimize(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "render") return cmd_render(args);
  if (cmd == "save") return cmd_save(args);
  return usage();
}

bool is_command(const std::string& cmd) {
  static const std::set<std::string> kCommands{
      "analyze",  "bisect",   "routes",  "simulate", "resilience", "verify",
      "deadlock", "sweep",    "batch",   "serve",    "loadgen",    "version",
      "tables",   "optimize", "profile", "render",   "save"};
  return kCommands.count(cmd) > 0;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  int first = 2;
  // `torusplace profile <command> [options]` wraps any command with the
  // in-process profiler — equivalent to `torusplace <command> --profile`.
  // A bare `profile` (next word is not a command) keeps its legacy
  // meaning: the per-dimension/direction load table.
  bool profile_wrapped = false;
  if (cmd == "profile" && argc >= 3 && is_command(argv[2])) {
    cmd = argv[2];
    first = 3;
    profile_wrapped = true;
  }
  const std::set<std::string> known{
      "d",    "k",  "t",         "router", "src",   "dst",
      "faults", "flits", "seed", "ks",     "placement", "size",
      "iters", "out", "stats-json", "trace", "link-json",
      "rates", "repair", "retries", "backoff", "horizon", "json",
      "threads", "in", "cache", "measure-threads", "deadline-ms",
      "slow-log", "cache-file", "checkpoint",
      "tcp", "max-conns", "max-line-bytes", "port-file", "connect",
      "mode", "clients", "rate", "duration-ms", "warmup-ms", "skew",
      "zipf-s", "universe"};
  const std::set<std::string> flags{"link-stats", "measured", "criticality",
                                    "stdio", "profile", "router-table",
                                    "cache-load", "cache-save"};
  const Args args(argc, argv, first, known, flags);

  // Global observability flags: turn the registry/tracer on before the
  // command runs, export after it finishes (even a failing command leaves
  // no partial file: export happens only on normal return).
  const std::string stats_path = args.get("stats-json");
  const std::string trace_path = args.get("trace");
  if (!stats_path.empty()) obs::registry().set_enabled(true);
  if (!trace_path.empty()) obs::tracer().set_enabled(true);
  // TP_OBS=1 enables the registry without requesting an export file —
  // same convention as the bench binaries (see bench/bench_common.h).
  if (std::getenv("TP_OBS") != nullptr) obs::registry().set_enabled(true);

  // --profile[=out.folded] (or the `profile <command>` wrapper) turns the
  // phase/sampling profiler on for the whole command and prints the phase
  // table to stderr afterwards, so JSONL stdout stays parseable.
  const bool profiling = profile_wrapped || args.has("profile");
  const std::string folded_path = args.get("profile");
  if (profiling) obs::profiler().start(obs::ProfilerConfig{});

  int rc = 0;
  {
    // Root phase: everything the command does attributes under "cli", so
    // the report's coverage is measured against the dispatch itself.
    TP_PROF_PHASE("cli");
    rc = dispatch(cmd, args);
  }

  if (profiling) {
    if (!trace_path.empty()) obs::profiler().emit_samples(obs::tracer());
    obs::profiler().stop();
    const obs::PhaseReport report = obs::profiler().report();
    std::cerr << obs::format_phase_table(report);
    if (!folded_path.empty()) {
      std::ofstream folded(folded_path);
      TP_REQUIRE(folded.good(), "cannot write '" + folded_path + "'");
      obs::write_collapsed(report, folded);
      std::cerr << "wrote collapsed stacks to " << folded_path << "\n";
    }
  }

  if (!stats_path.empty())
    obs::export_json(obs::registry().snapshot(), stats_path);
  if (!trace_path.empty())
    obs::export_chrome_trace(obs::tracer(), trace_path);
  return rc;
}

}  // namespace
}  // namespace tp::cli

int main(int argc, char** argv) {
  // Exit-code contract (see tools/cli_args.h): 0 ok, 2 usage error,
  // 3 internal TP_REQUIRE/TP_ASSERT failure.
  return tp::cli::run_guarded(argc, argv, [](int ac, char** av) {
    return tp::cli::run(ac, av);
  });
}
