// tp_lint — torusplace's repo-specific lint pass.
//
// A fast line/token-level checker for house rules that generic tools
// cannot know about.  It is deliberately not a parser: every rule works
// on a "scrubbed" view of the file where comments are blanked and string
// literals are collapsed (non-empty literals become "S", empty ones stay
// ""), so `// mutates over time (a wire...)` or a help string mentioning
// std::mutex never trips a rule, while real code always does.
//
// Usage:
//   tp_lint [--root <dir>] <path>...      lint files / directory trees
//   tp_lint --list-rules                  print the rule table
//
// Paths are resolved relative to --root (default: current directory) and
// rule applicability is decided from the path relative to the root, so
// the same binary lints both the real tree and the golden fixture tree
// under tests/lint_fixtures/ (which mirrors the repo layout).  Output is
// one diagnostic per line, sorted, in the stable format
//
//   <file>:<line>: [<rule-id>] <message>
//
// and the exit status is 0 (clean) or 1 (violations found).  The rule
// table and the how-to-add-a-rule recipe live in docs/static-analysis.md.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string file;  // path relative to --root, '/'-separated
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

// ---------------------------------------------------------------------------
// Scrubbing: blank comments, collapse string/char literals.
// ---------------------------------------------------------------------------

// Returns a copy of `text` with the same length and line structure where
//   * // and /* */ comments are replaced by spaces (newlines kept),
//   * "literal" becomes "S" padded with spaces (or "" if it was empty),
//   * 'c' char literals become ' ' padded,
//   * R"delim(...)delim" raw strings collapse like ordinary literals.
// Rules therefore only ever see real code tokens plus a marker for
// "some non-empty string literal was here".
std::string scrub(const std::string& text) {
  std::string out(text.size(), ' ');
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') out[i] = '\n';

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto copy = [&](std::size_t at) { out[at] = text[at]; };

  while (i < n) {
    const char c = text[i];
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      std::size_t d = i + 2;
      while (d < n && text[d] != '(' && text[d] != '"' && text[d] != '\n') ++d;
      if (d < n && text[d] == '(') {
        const std::string close = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
        const std::size_t end = text.find(close, d + 1);
        const std::size_t stop = (end == std::string::npos)
                                     ? n
                                     : end + close.size();
        const bool empty = (end == d + 1);
        out[i] = '"';
        if (!empty && i + 1 < stop) out[i + 1] = 'S';
        if (stop > i) out[stop - 1] = '"';
        i = stop;
        continue;
      }
    }
    // Ordinary string literal.
    if (c == '"') {
      const std::size_t start = i++;
      while (i < n && text[i] != '"' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      const std::size_t stop = (i < n && text[i] == '"') ? i + 1 : i;
      const bool empty = (stop == start + 2);
      out[start] = '"';
      if (!empty && start + 1 < stop) out[start + 1] = 'S';
      if (stop > start + 1) out[stop - 1] = '"';
      i = stop;
      continue;
    }
    // Char literal (only when it cannot be a digit separator like 1'000).
    if (c == '\'' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                    text[i - 1] != '_'))) {
      const std::size_t start = i++;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      const std::size_t stop = (i < n && text[i] == '\'') ? i + 1 : i;
      out[start] = '\'';
      if (stop > start + 1) out[stop - 1] = '\'';
      i = stop;
      continue;
    }
    copy(i);
    ++i;
  }
  return out;
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

// ---------------------------------------------------------------------------
// Path classification (relative, '/'-separated paths).
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool is_header(std::string_view path) {
  return path.size() >= 2 && (path.substr(path.size() - 2) == ".h" ||
                              (path.size() >= 4 &&
                               path.substr(path.size() - 4) == ".hpp"));
}

bool in_src(std::string_view p) { return starts_with(p, "src/"); }
bool in_util(std::string_view p) { return starts_with(p, "src/util/"); }
bool in_net(std::string_view p) { return starts_with(p, "src/net/"); }
bool in_lib_or_tool(std::string_view p) {
  return in_src(p) || starts_with(p, "tools/") || starts_with(p, "bench/");
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

struct Rule {
  const char* id;
  const char* scope;    // human-readable, for --list-rules
  const char* message;  // the diagnostic text
};

constexpr Rule kRules[] = {
    {"raw-sync", "src/ (except src/util/), tools/, bench/",
     "raw std synchronization primitive; use tp::Mutex/tp::MutexLock/"
     "tp::CondVar/tp::Thread from src/util/thread_annotations.h"},
    {"raw-random", "src/ (except src/util/), tools/, bench/",
     "unseeded randomness/time source; use the seeded PRNG in "
     "src/util/prng.h"},
    {"cout-in-lib", "src/",
     "std::cout in library code; return data or take an std::ostream& "
     "(printing belongs to tools/ and bench/)"},
    {"iostream-in-header", "src/ headers",
     "#include <iostream> in a library header; include <ostream>/<iosfwd> "
     "or move the printing into a .cpp"},
    {"bare-assert", "src/",
     "bare assert in library code; use TP_REQUIRE/TP_ASSERT from "
     "src/util/error.h so failures throw with expression and file:line"},
    {"no-fprintf", "src/",
     "printf/fprintf(stderr, ...) in library code; throw tp::Error, return "
     "data, or take an std::ostream& — ad-hoc stderr chatter bypasses the "
     "structured response/trace paths (std::snprintf formatting is fine)"},
    {"require-message", "src/, tools/, bench/",
     "TP_REQUIRE/TP_ASSERT needs a non-empty message argument (the "
     "expression and file:line alone rarely explain the contract)"},
    {"raw-timing", "src/",
     "raw timing primitive; use obs::Stopwatch (steady, monotonic) from "
     "src/obs/timer.h or TP_PROF_PHASE for durations — system_clock "
     "jumps with wall-clock adjustments and clock()/gettimeofday mix "
     "CPU/realtime semantics"},
    {"raw-io", "src/ (except src/util/)",
     "unchecked stdio file I/O; persistent binary state goes through "
     "src/util/checked_io.h (CRC-framed records, atomic replace) so "
     "truncation and bit-flips are detected instead of served"},
    {"raw-socket", "src/ (except src/net/)",
     "raw socket syscall; network I/O goes through the RAII wrappers in "
     "src/net/socket.h (Socket/Listener/connect_to) so fds cannot leak, "
     "EINTR is retried, and SIGPIPE stays suppressed"},
};

const Rule& rule(std::string_view id) {
  for (const Rule& r : kRules)
    if (id == r.id) return r;
  std::cerr << "tp_lint: internal error: unknown rule " << id << "\n";
  std::exit(2);
}

void add(std::vector<Diagnostic>& diags, const std::string& file,
         const std::string& text, std::size_t pos, std::string_view id) {
  const Rule& r = rule(id);
  diags.push_back(Diagnostic{file, line_of(text, pos), r.id, r.message});
}

// Scans `scrubbed` for matches of `re` and reports one diagnostic per
// match position under rule `id`.
void regex_rule(std::vector<Diagnostic>& diags, const std::string& file,
                const std::string& scrubbed, const std::regex& re,
                std::string_view id) {
  for (auto it = std::sregex_iterator(scrubbed.begin(), scrubbed.end(), re);
       it != std::sregex_iterator(); ++it)
    add(diags, file, scrubbed, static_cast<std::size_t>(it->position(0)), id);
}

// require-message: every TP_REQUIRE( / TP_ASSERT( invocation must carry at
// least two top-level arguments and the last must not be the empty string
// literal.  Works on the scrubbed text, walking the parenthesis nesting,
// so multi-line calls and commas inside nested calls are handled.
void check_require_message(std::vector<Diagnostic>& diags,
                           const std::string& file,
                           const std::string& scrubbed) {
  static const std::regex kCall(R"((TP_REQUIRE|TP_ASSERT)\s*\()");
  for (auto it = std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t name_pos = static_cast<std::size_t>(it->position(0));
    // Skip the macro's own definition ("#define TP_REQUIRE(cond, msg)").
    const std::size_t bol = scrubbed.rfind('\n', name_pos) + 1;
    const std::size_t def = scrubbed.find("#define", bol);
    if (def != std::string::npos && def < name_pos) continue;
    std::size_t i =
        name_pos + static_cast<std::size_t>(it->length(0));  // just past '('
    int depth = 1;
    std::size_t last_arg_begin = i;
    int top_level_commas = 0;
    while (i < scrubbed.size() && depth > 0) {
      const char c = scrubbed[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ',' && depth == 1) {
        ++top_level_commas;
        last_arg_begin = i + 1;
      }
      ++i;
    }
    std::string last_arg =
        scrubbed.substr(last_arg_begin, i > last_arg_begin
                                            ? i - 1 - last_arg_begin
                                            : 0);
    // Trim whitespace (scrubbing already removed comments).
    const auto first = last_arg.find_first_not_of(" \t\n\\");
    const auto last = last_arg.find_last_not_of(" \t\n\\");
    last_arg = (first == std::string::npos)
                   ? std::string()
                   : last_arg.substr(first, last - first + 1);
    if (top_level_commas == 0 || last_arg.empty() || last_arg == "\"\"")
      add(diags, file, scrubbed, name_pos, "require-message");
  }
}

void lint_file(std::vector<Diagnostic>& diags, const std::string& rel,
               const std::string& text) {
  const std::string scrubbed = scrub(text);

  // raw-sync / raw-random: concurrent and random primitives are only
  // spelled inside src/util/, where the blessed wrappers live.
  if (in_lib_or_tool(rel) && !in_util(rel)) {
    static const std::regex kSync(
        R"(std\s*::\s*(mutex|recursive_mutex|timed_mutex|shared_mutex|thread|jthread|lock_guard|unique_lock|scoped_lock|condition_variable|condition_variable_any)\b)");
    regex_rule(diags, rel, scrubbed, kSync, "raw-sync");

    static const std::regex kRandom(
        R"(std\s*::\s*random_device\b|(?:^|[^A-Za-z0-9_])((?:s?rand|time)\s*\())");
    for (auto it =
             std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kRandom);
         it != std::sregex_iterator(); ++it) {
      const std::size_t group = (*it)[1].matched ? 1 : 0;
      add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(group)),
          "raw-random");
    }
  }

  // cout-in-lib: libraries return data; only tools/ and bench/ print.
  if (in_src(rel)) {
    static const std::regex kCout(R"(std\s*::\s*cout\b)");
    regex_rule(diags, rel, scrubbed, kCout, "cout-in-lib");

    static const std::regex kAssert(
        R"((?:^|[^A-Za-z0-9_\.])(assert\s*\()|#\s*include\s*<cassert>)");
    for (auto it =
             std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kAssert);
         it != std::sregex_iterator(); ++it) {
      const std::size_t group = (*it)[1].matched ? 1 : 0;
      add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(group)),
          "bare-assert");
    }

    // no-fprintf: the preceding-character class deliberately excludes
    // identifier characters, so std::snprintf (…n-printf) and vfprintf
    // (…v-fprintf) pass while printf/fprintf/std::printf are caught.
    static const std::regex kPrintf(R"((?:^|[^A-Za-z0-9_])(f?printf)\s*\()");
    for (auto it =
             std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kPrintf);
         it != std::sregex_iterator(); ++it)
      add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(1)),
          "no-fprintf");
  }

  // raw-timing: durations in library code come from obs::Stopwatch (or a
  // profiler phase); system_clock/clock()/gettimeofday are either
  // non-monotonic or CPU-time with different semantics per platform.
  // The preceding-character class keeps steady_clock / FaultClock /
  // CLOCK_* out; only a bare clock( call is caught.
  if (in_src(rel)) {
    static const std::regex kSystemClock(
        R"(std\s*::\s*(chrono\s*::\s*system_clock\b|clock\s*\())");
    regex_rule(diags, rel, scrubbed, kSystemClock, "raw-timing");

    static const std::regex kCTime(
        R"((?:^|[^A-Za-z0-9_:\.])((?:gettimeofday|clock)\s*\())");
    for (auto it =
             std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kCTime);
         it != std::sregex_iterator(); ++it)
      add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(1)),
          "raw-timing");
  }

  // raw-io: persistent state written with bare stdio has no integrity
  // story — a torn write or flipped bit is served back as truth.  Library
  // code outside src/util/ (where the blessed wrappers live) must route
  // file bytes through util::CheckedFileWriter / read_checked_file /
  // AppendLog.  The preceding-character class keeps identifiers like
  // profile_fwrite out; only the bare calls and the FILE* type are caught.
  if (in_src(rel) && !in_util(rel)) {
    static const std::regex kFilePtr(R"((?:^|[^A-Za-z0-9_])(FILE)\s*\*)");
    static const std::regex kStdio(
        R"((?:^|[^A-Za-z0-9_:\.])(f(?:open|reopen|dopen|write|read|close)\s*\())");
    for (const std::regex* re : {&kFilePtr, &kStdio})
      for (auto it =
               std::sregex_iterator(scrubbed.begin(), scrubbed.end(), *re);
           it != std::sregex_iterator(); ++it)
        add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(1)),
            "raw-io");
  }

  // raw-socket: the BSD socket surface is only spelled inside src/net/,
  // where the RAII wrappers live (src/net/socket.h documents itself as
  // the single file naming these syscalls).  The preceding-character
  // class keeps member calls (sock.accept_connection), qualified names
  // (tp::net::connect_to), and identifiers like accept_reject out;
  // `shutdown` is deliberately absent (too common as an ordinary verb).
  if (in_src(rel) && !in_net(rel)) {
    static const std::regex kSocket(
        R"((?:^|[^A-Za-z0-9_:\.])((?:socket|bind|listen|accept|accept4|connect|send|recv|sendto|recvfrom|sendmsg|recvmsg|setsockopt|getsockopt|getsockname)\s*\())");
    for (auto it =
             std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kSocket);
         it != std::sregex_iterator(); ++it)
      add(diags, rel, scrubbed, static_cast<std::size_t>(it->position(1)),
          "raw-socket");
  }

  // iostream-in-header: library headers must not pull in iostream (it
  // injects static initializers into every TU and slows builds).
  if (in_src(rel) && is_header(rel)) {
    static const std::regex kIostream(R"(#\s*include\s*<iostream>)");
    regex_rule(diags, rel, scrubbed, kIostream, "iostream-in-header");
  }

  if (in_lib_or_tool(rel)) check_require_message(diags, rel, scrubbed);
}

// ---------------------------------------------------------------------------
// File collection
// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

// Directories never descended into when walking a tree: build outputs,
// VCS metadata, and the deliberately-violating lint fixtures (lint them
// by passing the fixture directory as the --root instead).
bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         starts_with(name, "build");
}

void collect(const fs::path& start, std::vector<fs::path>& files) {
  if (fs::is_regular_file(start)) {
    if (lintable(start)) files.push_back(start);
    return;
  }
  if (!fs::is_directory(start)) {
    std::cerr << "tp_lint: no such file or directory: " << start.string()
              << "\n";
    std::exit(2);
  }
  for (fs::recursive_directory_iterator it(start), end; it != end; ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path()))
      files.push_back(it->path());
  }
}

std::string relative_slash(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  if (starts_with(rel, "./")) rel = rel.substr(2);
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const Rule& r : kRules)
        std::cout << r.id << "\t[" << r.scope << "]\t" << r.message << "\n";
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "tp_lint: --root needs a value\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--") continue;
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::cerr << "usage: tp_lint [--root <dir>] <path>... | --list-rules\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative()) p = root / p;
    collect(p, files);
  }

  std::vector<Diagnostic> diags;
  for (const fs::path& f : files) {
    std::ifstream stream(f, std::ios::binary);
    if (!stream) {
      std::cerr << "tp_lint: cannot read " << f.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << stream.rdbuf();
    lint_file(diags, relative_slash(f, root), buf.str());
  }

  std::sort(diags.begin(), diags.end());
  diags.erase(std::unique(diags.begin(), diags.end(),
                          [](const Diagnostic& a, const Diagnostic& b) {
                            return a.file == b.file && a.line == b.line &&
                                   a.rule == b.rule;
                          }),
              diags.end());
  for (const Diagnostic& d : diags)
    std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
              << d.message << "\n";
  if (!diags.empty()) {
    std::cout << diags.size() << " violation(s)\n";
    return 1;
  }
  return 0;
}
