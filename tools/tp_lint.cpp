// tp_lint — torusplace's repo-specific lint pass.
//
// A fast token-level checker for house rules that generic tools cannot
// know about.  v2 is backed by a real tokenizer (src/lint/token.h): rules
// match token sequences instead of regexes over scrubbed text, so
// `using std::mutex;` followed by a bare `mutex m;` is caught, comments
// and string literals can never trip a rule, and line splices are
// transparent.  On top of the per-file rules sit two tree-wide passes:
//
//   architecture  every `#include "..."` is aggregated into a module
//                 graph and checked against the allowed-edges DAG
//                 declared in src/lint/include_graph.cpp (layering
//                 inversions and cycles are violations; --dot exports
//                 the observed graph);
//   determinism   iterating an unordered container inside a function
//                 that writes an output sink is flagged — hash order
//                 must never reach the byte-identical outputs
//                 (src/lint/determinism.h; tp::sorted_items/sorted_keys
//                 from src/util/sorted_view.h is the blessed fix).
//
// Usage:
//   tp_lint [options] <path>...           lint files / directory trees
//   tp_lint --list-rules                  print the rule table
//
// Options:
//   --root <dir>        resolve paths and rule scopes relative to <dir>
//                       (default: current directory)
//   --format <f>        text (default) | json | sarif
//   --baseline <file>   suppress accepted findings listed in <file>
//                       (format: `<file>:<rule-id>: <justification>`)
//   --dot <file|->      also write the observed module graph as DOT
//   --jobs <n>          parallel scan workers (default: all cores)
//
// Paths are resolved relative to --root and rule applicability is
// decided from the path relative to the root, so the same binary lints
// both the real tree and the golden fixture tree under
// tests/lint_fixtures/ (which mirrors the repo layout).  Text output is
// one diagnostic per line, sorted, in the stable format
//
//   <file>:<line>: [<rule-id>] <message>
//
// and the exit status is 0 (clean) or 1 (violations found; stale
// baseline entries also count).  The rule table, the module DAG, and the
// how-to-add-a-rule recipe live in docs/static-analysis.md.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/lint/baseline.h"
#include "src/lint/paths.h"
#include "src/lint/format.h"
#include "src/lint/lint.h"
#include "src/util/error.h"
#include "src/util/parallel.h"

namespace {

int usage() {
  std::cerr << "usage: tp_lint [--root <dir>] [--format text|json|sarif]\n"
               "               [--baseline <file>] [--dot <file|->]\n"
               "               [--jobs <n>] <path>... | --list-rules\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = std::filesystem::current_path().string();
  std::string format_name = "text";
  std::string baseline_path;
  std::string dot_path;
  int jobs = tp::default_threads();
  std::vector<std::string> inputs;

  auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "tp_lint: " << argv[i] << " needs a value\n";
      return nullptr;
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const tp::lint::Rule& r : tp::lint::rules())
        std::cout << r.id << "\t[" << r.scope << "]\t" << r.message << "\n";
      return 0;
    }
    if (arg == "--root") {
      const char* v = value_of(i);
      if (v == nullptr) return 2;
      root = v;
      continue;
    }
    if (arg == "--format" || tp::lint::starts_with(arg, "--format=")) {
      std::string v;
      if (arg == "--format") {
        const char* raw = value_of(i);
        if (raw == nullptr) return 2;
        v = raw;
      } else {
        v = arg.substr(std::string("--format=").size());
      }
      format_name = v;
      continue;
    }
    if (arg == "--baseline") {
      const char* v = value_of(i);
      if (v == nullptr) return 2;
      baseline_path = v;
      continue;
    }
    if (arg == "--dot") {
      const char* v = value_of(i);
      if (v == nullptr) return 2;
      dot_path = v;
      continue;
    }
    if (arg == "--jobs") {
      const char* v = value_of(i);
      if (v == nullptr) return 2;
      jobs = std::atoi(v);
      if (jobs < 1) {
        std::cerr << "tp_lint: --jobs needs a positive integer\n";
        return 2;
      }
      continue;
    }
    if (arg == "--") continue;
    if (tp::lint::starts_with(arg, "--")) {
      std::cerr << "tp_lint: unknown option " << arg << "\n";
      return usage();
    }
    inputs.push_back(arg);
  }
  if (inputs.empty()) return usage();

  try {
    const tp::lint::Format format = tp::lint::parse_format(format_name);

    std::vector<tp::lint::BaselineEntry> baseline;
    if (!baseline_path.empty())
      baseline =
          tp::lint::parse_baseline(tp::lint::read_file(baseline_path));

    tp::lint::TreeResult result = tp::lint::scan_tree(root, inputs, jobs);

    std::vector<tp::lint::BaselineEntry> unused;
    if (!baseline.empty())
      tp::lint::apply_baseline(baseline, result.diags, unused);

    if (!dot_path.empty()) {
      if (dot_path == "-") {
        result.graph.write_dot(std::cout);
      } else {
        std::ofstream out(dot_path, std::ios::binary);
        if (!out) {
          std::cerr << "tp_lint: cannot write " << dot_path << "\n";
          return 2;
        }
        result.graph.write_dot(out);
      }
    }

    tp::lint::write_findings(std::cout, format, result.diags);

    // Stale baseline entries are themselves violations: the finding they
    // accepted no longer exists, so the suppression must be deleted.
    for (const tp::lint::BaselineEntry& e : unused)
      std::cerr << "tp_lint: stale baseline entry (no matching finding): "
                << e.file << ":" << e.rule << "\n";

    return result.diags.empty() && unused.empty() ? 0 : 1;
  } catch (const tp::Error& e) {
    std::cerr << "tp_lint: " << e.what() << "\n";
    return 2;
  }
}
